// Target board description.
//
// The paper evaluates on an STM32-Nucleo-U575ZI-Q (STM32U575ZIT6Q SoC,
// Cortex-M33) at 160 MHz with 2 MB flash and 768 KB RAM. Energy follows
// the paper's own Table II, which is consistent with a constant active
// power of ~33 mW across every design (2.73 mJ / 82.8 ms = 5.94 mJ /
// 179.9 ms = 32.9 mW), so energy = P * latency.
#pragma once

#include <cstdint>
#include <string>

namespace ataman {

struct BoardSpec {
  std::string name = "STM32-Nucleo-U575ZI-Q";
  std::string core = "Cortex-M33";
  double clock_hz = 160.0e6;
  int64_t flash_bytes = 2000 * 1024;  // paper: "fitting 2000KB ROM"
  int64_t ram_bytes = 768 * 1024;
  double active_power_w = 0.033;

  double cycles_to_ms(int64_t cycles) const {
    return static_cast<double>(cycles) / clock_hz * 1e3;
  }
  double energy_mj(int64_t cycles) const {
    return cycles_to_ms(cycles) * active_power_w;  // ms * W == mJ
  }
};

inline BoardSpec stm32u575_board() { return {}; }

}  // namespace ataman
