// Error handling for the ataman library.
//
// Library code throws ataman::Error for recoverable misuse (bad shapes,
// malformed files, invalid configs) and uses ATAMAN_ASSERT for internal
// invariants that indicate a bug rather than bad input.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace ataman {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const std::string& message,
                              const std::source_location& loc);
[[noreturn]] void assertion_failure(const char* expr,
                                    const std::string& message,
                                    const std::source_location& loc);
}  // namespace detail

// Throws ataman::Error with file:line context when `cond` is false.
inline void check(bool cond, const std::string& message,
                  const std::source_location loc =
                      std::source_location::current()) {
  if (!cond) detail::throw_error(message, loc);
}

[[noreturn]] inline void fail(
    const std::string& message,
    const std::source_location loc = std::source_location::current()) {
  detail::throw_error(message, loc);
}

}  // namespace ataman

// Internal invariant check; kept as a macro so the failing expression text
// is captured. Enabled in all build types: this library's correctness
// claims (bit-exact kernels) are worth the branch.
#define ATAMAN_ASSERT(expr)                                             \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ataman::detail::assertion_failure(                              \
          #expr, "", std::source_location::current());                  \
    }                                                                   \
  } while (false)

#define ATAMAN_ASSERT_MSG(expr, msg)                                    \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ataman::detail::assertion_failure(                              \
          #expr, (msg), std::source_location::current());               \
    }                                                                   \
  } while (false)
