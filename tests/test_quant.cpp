// Quantization substrate: affine params, range observer, PTQ of a trained
// float net, QModel serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/common/error.hpp"
#include "src/nn/engine.hpp"
#include "src/quant/calibrate.hpp"
#include "src/quant/quantizer.hpp"
#include "src/train/model_zoo.hpp"

namespace ataman {
namespace {

TEST(QuantParams, RoundTripWithinOneScale) {
  QuantParams p{0.05f, -10};
  for (const float v : {-3.0f, -0.07f, 0.0f, 0.55f, 2.9f}) {
    const int8_t q = p.quantize(v);
    EXPECT_NEAR(p.dequantize(q), v, p.scale * 0.51f) << v;
  }
}

TEST(QuantParams, SaturatesAtInt8Limits) {
  QuantParams p{0.01f, 0};
  EXPECT_EQ(p.quantize(100.0f), 127);
  EXPECT_EQ(p.quantize(-100.0f), -128);
}

TEST(RangeObserver, MinMaxTracking) {
  RangeObserver obs;
  const float data[] = {0.5f, -1.5f, 3.0f, 0.0f};
  obs.observe(data, 4);
  EXPECT_FLOAT_EQ(obs.min(), -1.5f);
  EXPECT_FLOAT_EQ(obs.max(), 3.0f);
  EXPECT_THROW(RangeObserver().min(), Error);
}

TEST(RangeObserver, AffineParamsRepresentZeroExactly) {
  RangeObserver obs;
  const float data[] = {0.1f, 4.9f};
  obs.observe(data, 2);
  const QuantParams p = obs.to_affine_params();
  // real 0 must map to an exact integer (the zero point).
  const float recon = p.dequantize(p.quantize(0.0f));
  EXPECT_FLOAT_EQ(recon, 0.0f);
  EXPECT_GE(p.zero_point, -128);
  EXPECT_LE(p.zero_point, 127);
}

TEST(RangeObserver, SymmetricParams) {
  RangeObserver obs;
  const float data[] = {-2.0f, 1.0f};
  obs.observe(data, 2);
  const QuantParams p = obs.to_symmetric_params();
  EXPECT_EQ(p.zero_point, 0);
  EXPECT_NEAR(p.scale, 2.0f / 127.0f, 1e-6f);
}

TEST(RangeObserver, QuantileClippingTrimsOutliers) {
  RangeObserver clipped(0.01);
  RangeObserver raw(0.0);
  Rng rng(5);
  std::vector<float> data(10000);
  for (auto& v : data) v = rng.next_normal(0.0f, 1.0f);
  data[17] = 500.0f;  // gross outlier
  clipped.observe(data.data(), static_cast<int64_t>(data.size()));
  raw.observe(data.data(), static_cast<int64_t>(data.size()));
  const auto [clo, chi] = clipped.clipped_range();
  const auto [rlo, rhi] = raw.clipped_range();
  EXPECT_LT(chi, 100.0f);   // outlier clipped away
  EXPECT_GE(rhi, 499.0f);   // raw keeps it
  EXPECT_LT(clo, 0.0f);
  (void)rlo;
}

TEST(RangeObserver, MergeCoversBothRanges) {
  RangeObserver a, b;
  const float da[] = {-1.0f, 0.5f};
  const float db[] = {0.2f, 7.0f};
  a.observe(da, 2);
  b.observe(db, 2);
  a.merge(b);
  EXPECT_FLOAT_EQ(a.min(), -1.0f);
  EXPECT_FLOAT_EQ(a.max(), 7.0f);
}

class QuantizedMicronet : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ZooSpec spec = micronet_spec();
    spec.data.train_images = 600;
    spec.data.test_images = 300;
    spec.train.epochs = 5;
    spec.train.lr_decay_at = {4};
    model_ = new TrainedModel(train_from_scratch(spec, /*verbose=*/false));
    data_ = new SynthCifar(make_synth_cifar(spec.data));
    qmodel_ = new QModel(quantize_model(model_->net, data_->train));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    delete qmodel_;
    model_ = nullptr;
    data_ = nullptr;
    qmodel_ = nullptr;
  }
  static TrainedModel* model_;
  static SynthCifar* data_;
  static QModel* qmodel_;
};

TrainedModel* QuantizedMicronet::model_ = nullptr;
SynthCifar* QuantizedMicronet::data_ = nullptr;
QModel* QuantizedMicronet::qmodel_ = nullptr;

TEST_F(QuantizedMicronet, StructureMatchesFloatNet) {
  EXPECT_EQ(qmodel_->conv_layer_count(), 2);
  EXPECT_EQ(qmodel_->layers.size(), 5u);  // conv pool conv pool fc
  EXPECT_EQ(qmodel_->mac_count(), model_->net.mac_count());
}

TEST_F(QuantizedMicronet, ReluFoldedIntoConvClamp) {
  // Both convs are followed by ReLU in micronet: act_min == out zero point.
  for (const QLayer& layer : qmodel_->layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      EXPECT_EQ(conv->act_min, conv->out.zero_point);
    }
  }
}

TEST_F(QuantizedMicronet, InputParamsAreStandard) {
  EXPECT_FLOAT_EQ(qmodel_->input.scale, 1.0f / 255.0f);
  EXPECT_EQ(qmodel_->input.zero_point, -128);
}

TEST_F(QuantizedMicronet, AccuracyCloseToFloat) {
  const double qacc = evaluate_quantized_accuracy(*qmodel_, data_->test);
  const double facc = evaluate_accuracy(model_->net, data_->test);
  EXPECT_NEAR(qacc, facc, 0.06);
}

TEST_F(QuantizedMicronet, SaveLoadRoundTripBitExact) {
  const std::string path = "/tmp/ataman_qm_roundtrip.qm";
  save_qmodel(*qmodel_, path);
  const QModel loaded = load_qmodel(path);
  RefEngine a(qmodel_), b(&loaded);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.run(data_->test.image(i)), b.run(data_->test.image(i)));
  }
  std::remove(path.c_str());
}

TEST_F(QuantizedMicronet, SaveLoadPreservesPerChannelVectors) {
  // The per-channel trailer must round-trip the full w_scales/requant
  // vectors bitwise (distinct scales, not just the channel-0 scalar the
  // legacy inline slots carry).
  const std::string path = "/tmp/ataman_qm_perchannel_roundtrip.qm";
  save_qmodel(*qmodel_, path);
  const QModel loaded = load_qmodel(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.layers.size(), qmodel_->layers.size());
  for (size_t l = 0; l < loaded.layers.size(); ++l) {
    const auto* want = std::get_if<QConv2D>(&qmodel_->layers[l]);
    if (want == nullptr) continue;
    const auto* got = std::get_if<QConv2D>(&loaded.layers[l]);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->w_scales, want->w_scales) << "layer " << l;
    ASSERT_EQ(got->requant.size(), want->requant.size()) << "layer " << l;
    for (size_t c = 0; c < want->requant.size(); ++c) {
      EXPECT_EQ(got->requant[c].mult, want->requant[c].mult)
          << "layer " << l << " channel " << c;
      EXPECT_EQ(got->requant[c].shift, want->requant[c].shift)
          << "layer " << l << " channel " << c;
    }
  }
}

TEST_F(QuantizedMicronet, BiasScaleConsistency) {
  // Bias channel c is stored at in_scale*w_scales[c]: requant of a
  // (bias-only) output must approximate the float bias in the output
  // scale.
  for (const QLayer& layer : qmodel_->layers) {
    const auto* conv = std::get_if<QConv2D>(&layer);
    if (conv == nullptr) continue;
    ASSERT_EQ(conv->w_scales.size(), conv->bias.size());
    for (size_t c = 0; c < conv->bias.size(); ++c) {
      const double bias_scale =
          static_cast<double>(conv->in.scale) * conv->w_scales[c];
      // Sanity: dequantized bias magnitudes are small (trained with
      // weight decay; bias real values < 2).
      EXPECT_LT(std::abs(static_cast<double>(conv->bias[c]) * bias_scale),
                4.0);
    }
  }
}

TEST_F(QuantizedMicronet, PerChannelScalesVaryAcrossChannels) {
  // Per-channel quantization must actually produce distinct scales on a
  // trained net (all-equal would mean the per-tensor path leaked in).
  for (const QLayer& layer : qmodel_->layers) {
    const auto* conv = std::get_if<QConv2D>(&layer);
    if (conv == nullptr) continue;
    ASSERT_EQ(static_cast<int>(conv->w_scales.size()), conv->geom.out_c);
    ASSERT_EQ(conv->w_scales.size(), conv->requant.size());
    bool distinct = false;
    for (const float s : conv->w_scales) {
      EXPECT_GT(s, 0.0f);
      if (s != conv->w_scales[0]) distinct = true;
    }
    EXPECT_TRUE(distinct);
  }
}

}  // namespace
}  // namespace ataman
