#include "src/sig/significance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/error.hpp"

namespace ataman {

namespace {

// Shared Eq. (2) core: one channel's significance row from parallel
// spans of expected operands and weights (any stride/picking already
// applied by the caller).
void significance_row(const double* mean, const int8_t* w, int stride,
                      int patch, float* srow) {
  // Expected channel sum (bias excluded: Eq. (2) normalizes over the
  // weighted-sum part of Eq. (1)).
  double denom = 0.0;
  for (int i = 0; i < patch; ++i)
    denom += mean[static_cast<size_t>(i) * stride] *
             static_cast<double>(w[static_cast<size_t>(i) * stride]);

  if (denom == 0.0) {
    // Zero-sum rule: consider every S_i large -> retain all products.
    std::fill(srow, srow + patch, kAlwaysRetain);
    return;
  }
  for (int i = 0; i < patch; ++i) {
    const double contrib = mean[static_cast<size_t>(i) * stride] *
                           static_cast<double>(w[static_cast<size_t>(i) * stride]);
    srow[i] = static_cast<float>(std::abs(contrib / denom));
  }
}

void sort_ascending(LayerSignificance& sig) {
  sig.ascending.resize(static_cast<size_t>(sig.out_c));
  for (int oc = 0; oc < sig.out_c; ++oc) {
    const float* srow = sig.S.data() + static_cast<size_t>(oc) * sig.patch;
    auto& order = sig.ascending[static_cast<size_t>(oc)];
    order.resize(static_cast<size_t>(sig.patch));
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) { return srow[a] < srow[b]; });
  }
}

}  // namespace

LayerSignificance compute_significance(const QConv2D& layer,
                                       const ConvInputStats& stats) {
  const int patch = layer.geom.patch_size();
  const int out_c = layer.geom.out_c;
  check(static_cast<int>(stats.mean_corrected.size()) == patch,
        "activation stats do not match layer patch size");

  LayerSignificance sig;
  sig.out_c = out_c;
  sig.patch = patch;
  sig.S.resize(static_cast<size_t>(out_c) * patch);
  for (int oc = 0; oc < out_c; ++oc) {
    // Conv: stats are shared across output channels; weights are the
    // channel's contiguous [patch] row.
    significance_row(stats.mean_corrected.data(),
                     layer.weights.data() + static_cast<size_t>(oc) * patch,
                     /*stride=*/1, patch,
                     sig.S.data() + static_cast<size_t>(oc) * patch);
  }
  sort_ascending(sig);
  return sig;
}

LayerSignificance compute_significance(const QDepthwiseConv2D& layer,
                                       const ConvInputStats& stats) {
  const int patch = layer.patch_size();
  check(static_cast<int64_t>(stats.mean_corrected.size()) ==
            static_cast<int64_t>(patch) * layer.channels,
        "activation stats do not match depthwise layer");

  LayerSignificance sig;
  sig.out_c = layer.channels;
  sig.patch = patch;
  sig.S.resize(static_cast<size_t>(layer.channels) * patch);
  for (int ch = 0; ch < layer.channels; ++ch) {
    // Depthwise: stats and weights are both [tap][channel]; channel ch's
    // operands sit at stride `channels` starting from offset ch.
    significance_row(stats.mean_corrected.data() + ch,
                     layer.weights.data() + ch,
                     /*stride=*/layer.channels, patch,
                     sig.S.data() + static_cast<size_t>(ch) * patch);
  }
  sort_ascending(sig);
  return sig;
}

std::vector<LayerSignificance> compute_model_significance(
    const QModel& model, const std::vector<ConvInputStats>& stats) {
  check(static_cast<int>(stats.size()) == model.approx_layer_count(),
        "stats/approximable-layer count mismatch");
  std::vector<LayerSignificance> out;
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      out.push_back(compute_significance(
          *conv, stats[static_cast<size_t>(ordinal)]));
      ++ordinal;
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      out.push_back(compute_significance(
          *dw, stats[static_cast<size_t>(ordinal)]));
      ++ordinal;
    }
  }
  return out;
}

}  // namespace ataman
