#include "src/serve/stream_session.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace ataman::serve {

StreamSession::StreamSession(uint64_t id, const QModel* model,
                             StreamSessionOptions options)
    : id_(id), model_(model), options_(std::move(options)) {
  check(model != nullptr, "StreamSession needs a model");
  check(model->head != TaskHead::kScore,
        "open_session: model '" + model->name +
            "' has a scored head — its reduction reads the whole window "
            "per frame, so streaming sessions support classify heads only");
}

StreamSessionStats StreamSession::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void StreamSession::validate_push(size_t column_bytes) {
  const QModel& m = *model_;
  const int64_t col_elems = static_cast<int64_t>(m.in_h) * m.in_c;
  check(column_bytes > 0 &&
            static_cast<int64_t>(column_bytes) % col_elems == 0,
        "push_frame: frame must be whole [h][s][c] columns (column is " +
            std::to_string(col_elems) + " bytes)");
  const int s = static_cast<int>(static_cast<int64_t>(column_bytes) /
                                 col_elems);
  check(s <= m.in_w,
        "push_frame: " + std::to_string(s) +
            " columns exceed the input width " + std::to_string(m.in_w));
  const std::lock_guard<std::mutex> lock(push_mutex_);
  check(pushed_ > 0 || s == m.in_w,
        "push_frame: a session's first frame must be a full window (" +
            std::to_string(m.in_w) + " columns)");
  ++pushed_;
}

InferResult StreamSession::execute_frame(InferenceEngine& engine,
                                         std::span<const uint8_t> columns) {
  check(!poisoned_,
        "stream session " + std::to_string(id_) +
            " is poisoned by an earlier frame error (the failed frame was "
            "never applied, so the window is out of sync): " +
            poison_error_);

  InferResult r;
  bool incremental = false;
  int64_t recomputed = 0, spliced = 0;
  const int64_t full = engine.mac_ops();
  try {
    if (engine.supports_run_incremental()) {
      r.logits = engine.run_incremental(state_, columns);
      incremental = true;
      recomputed = state_.last_recomputed_macs;
      spliced = state_.last_spliced_elems;
    } else {
      // Fallback: maintain the rolling u8 window and recompute in full.
      const QModel& m = *model_;
      const size_t row_bytes = static_cast<size_t>(m.in_w) * m.in_c;
      const size_t col_bytes = static_cast<size_t>(m.in_c);
      const int s = static_cast<int>(columns.size() /
                                     (static_cast<size_t>(m.in_h) * m.in_c));
      if (window_.empty()) {
        window_.assign(columns.begin(), columns.end());
      } else {
        for (int y = 0; y < m.in_h; ++y) {
          uint8_t* row = window_.data() + static_cast<size_t>(y) * row_bytes;
          std::copy(row + static_cast<size_t>(s) * col_bytes,
                    row + row_bytes, row);
          std::copy_n(columns.data() +
                          static_cast<size_t>(y) * s * col_bytes,
                      static_cast<size_t>(s) * col_bytes,
                      row + static_cast<size_t>(m.in_w - s) * col_bytes);
        }
      }
      r.logits = engine.run(window_);
      recomputed = full;
    }
  } catch (const std::exception& e) {
    poisoned_ = true;
    poison_error_ = e.what();
    throw;
  }
  r.top1 = argmax_lowest_index(r.logits);

  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.frames;
    if (incremental) {
      ++stats_.incremental_frames;
    } else {
      ++stats_.fallback_frames;
    }
    stats_.recomputed_macs += recomputed;
    stats_.full_macs += full;
    stats_.spliced_elems += spliced;
  }
  return r;
}

}  // namespace ataman::serve
