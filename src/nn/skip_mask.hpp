// Skip mask: which static conv products are omitted.
//
// The paper's approximation (§II-C) removes individual products a_i * w_i
// from each output channel's accumulation. A skipped product is a *static*
// (conv layer, out channel, filter operand index) triple — the operand
// index is the (ky, kx, in_c)-flattened position within the filter, the
// same ordering used by im2col, the unpacked programs and the code
// generator. Skipping removes that operand at every output spatial
// position, exactly like deleting its instruction from generated code.
#pragma once

#include <cstdint>
#include <vector>

#include "src/quant/qtypes.hpp"

namespace ataman {

struct SkipMask {
  // conv_masks[conv_ordinal][out_c * patch_size + operand] == 1 -> skip.
  // An empty per-layer vector means "layer untouched".
  std::vector<std::vector<uint8_t>> conv_masks;

  bool empty() const;
  // Total number of skipped static operands.
  int64_t skipped_static_operands() const;

  // Dynamic (per-inference) MACs removed from `model` by this mask:
  // each skipped static operand saves out_h*out_w MACs in its layer.
  int64_t skipped_macs(const QModel& model) const;

  // Validate dimensions against `model`; throws on mismatch.
  void validate(const QModel& model) const;

  // All-zeros mask shaped for `model`.
  static SkipMask none(const QModel& model);
};

// A copy of `model` with every skipped conv weight set to zero. The
// quantized product (a - zp) * w vanishes for w == 0, so running the
// masked copy through any exact engine is numerically identical to
// skip-aware execution — and faster to evaluate (no per-MAC branch),
// which is what the DSE uses for its thousands of accuracy evaluations.
QModel apply_skip_mask(const QModel& model, const SkipMask& mask);

}  // namespace ataman
