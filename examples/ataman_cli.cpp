// Command-line front end for the full framework — the closest analogue to
// the paper's "automated toolkit" entry point.
//
// Usage:
//   ataman_cli [--model lenet|alexnet|micronet|dscnn|mobilenetv2|vww|
//               ae_anomaly]
//              [--loss 0.05]
//              [--eval-images N] [--tau-step S] [--engine NAME]
//              [--fast-dse | --exact-sweep]
//              [--emit out.c] [--json report.json] [--hybrid]
//              [--serve [--requests N] [--serve-workers W]
//               [--serve-batch B]]
//
// Runs: load/train + quantize -> analyze -> DSE -> select at the given
// accuracy-loss budget -> deploy (vs CMSIS-NN and X-CUBE-AI) -> optional
// C emission, with a machine-readable JSON report. `--engine` picks the
// EngineRegistry backend the selected design is deployed through
// (default "unpacked"; exact backends ignore the skip mask). The sweep
// runs through the layer-prefix activation cache with adaptive early
// exit (`--fast-dse`, the default); `--exact-sweep` evaluates every
// config on the full image budget instead — bitwise identical to the
// per-config sweep. See docs/DSE.md.
//
// `--serve` appends a serving demo after deployment: the selected
// approximate design plus the exact comparators are served as mixed
// traffic through the batched async runtime (src/serve), and every
// result is cross-checked bitwise against serial execution. See
// docs/SERVING.md.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/stopwatch.hpp"
#include "src/core/ataman.hpp"
#include "src/core/engine_iface.hpp"
#include "src/core/eval.hpp"
#include "src/serve/server.hpp"
#include "src/unpack/layer_selection.hpp"

namespace {

using namespace ataman;

struct CliArgs {
  std::string model = "micronet";
  double loss = 0.05;
  int eval_images = 400;
  double tau_step = 0.01;
  std::string engine = "unpacked";
  std::string emit_path;
  std::string json_path;
  bool hybrid = false;
  // --fast-dse is accepted purely so scripts can state the (default)
  // sweep mode explicitly; its only effect is the mutual-exclusion check
  // against --exact-sweep, which is what actually switches modes.
  bool fast_dse = false;
  bool exact_sweep = false;  // escape hatch: full-budget, bitwise-exact DSE
  bool serve = false;        // post-deploy serving demo (src/serve)
  int requests = 64;         // --serve traffic volume
  int serve_workers = 4;
  int serve_batch = 8;
};

CliArgs parse_args(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      check(i + 1 < argc, "missing value for " + a);
      return argv[++i];
    };
    if (a == "--model") {
      args.model = next();
    } else if (a == "--loss") {
      args.loss = std::stod(next());
    } else if (a == "--eval-images") {
      args.eval_images = std::stoi(next());
    } else if (a == "--tau-step") {
      args.tau_step = std::stod(next());
    } else if (a == "--engine") {
      args.engine = next();
    } else if (a == "--emit") {
      args.emit_path = next();
    } else if (a == "--json") {
      args.json_path = next();
    } else if (a == "--hybrid") {
      args.hybrid = true;
    } else if (a == "--fast-dse") {
      args.fast_dse = true;
    } else if (a == "--exact-sweep") {
      args.exact_sweep = true;
    } else if (a == "--serve") {
      args.serve = true;
    } else if (a == "--requests") {
      args.requests = std::stoi(next());
    } else if (a == "--serve-workers") {
      args.serve_workers = std::stoi(next());
    } else if (a == "--serve-batch") {
      args.serve_batch = std::stoi(next());
    } else if (a == "--help" || a == "-h") {
      std::string engines;
      for (const std::string& n : EngineRegistry::instance().names()) {
        if (!engines.empty()) engines += "|";
        engines += n;
      }
      std::printf(
          "usage: ataman_cli [--model "
          "lenet|alexnet|micronet|dscnn|mobilenetv2|vww|ae_anomaly]\n"
          "                  [--loss F]\n"
          "                  [--eval-images N] [--tau-step S]\n"
          "                  [--engine %s]\n"
          "                  [--fast-dse | --exact-sweep]\n"
          "                  [--emit F.c] [--json F.json] [--hybrid]\n"
          "                  [--serve [--requests N] [--serve-workers W]\n"
          "                   [--serve-batch B]]\n",
          engines.c_str());
      std::exit(0);
    } else {
      fail("unknown argument: " + a);
    }
  }
  return args;
}

Json report_json(const DeployReport& r) {
  JsonObject o;
  o.emplace("design", r.design);
  o.emplace("network", r.network);
  o.emplace("topology", r.topology);
  o.emplace("accuracy", r.top1_accuracy);
  o.emplace("latency_ms", r.latency_ms);
  o.emplace("flash_bytes", static_cast<int64_t>(r.flash_bytes));
  o.emplace("ram_bytes", static_cast<int64_t>(r.ram_bytes));
  o.emplace("energy_mj", r.energy_mj);
  o.emplace("mac_ops", static_cast<int64_t>(r.mac_ops));
  return Json(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_args(argc, argv);
  // Fail on a bad backend name before minutes of train/analyze/DSE work.
  check(EngineRegistry::instance().contains(args.engine),
        "unknown --engine '" + args.engine + "' (see --help)");
  check(!args.hybrid || args.engine == "unpacked",
        "--hybrid requires --engine unpacked");
  check(!(args.fast_dse && args.exact_sweep),
        "--fast-dse and --exact-sweep are mutually exclusive");
  check(args.model == "lenet" || args.model == "alexnet" ||
            args.model == "micronet" || args.model == "dscnn" ||
            args.model == "mobilenetv2" || args.model == "vww" ||
            args.model == "ae_anomaly",
        "unknown --model '" + args.model + "' (see --help)");

  const ZooSpec spec = args.model == "lenet"         ? lenet_spec()
                       : args.model == "alexnet"     ? alexnet_spec()
                       : args.model == "dscnn"       ? dscnn_spec()
                       : args.model == "mobilenetv2" ? mobilenetv2_spec()
                       : args.model == "vww"         ? vww_spec()
                       : args.model == "ae_anomaly"  ? ae_anomaly_spec()
                                                     : micronet_spec();
  std::printf("[cli] model=%s (%s) loss=%.3f\n", args.model.c_str(),
              spec.arch.topology.c_str(), args.loss);
  const QModel model = get_or_build_qmodel(spec);
  const SynthCifar data = make_synth_cifar(spec.data);

  PipelineOptions options;
  options.dse.eval_images = args.eval_images;
  options.dse.tau_step = args.tau_step;
  options.dse.exact_sweep = args.exact_sweep;
  AtamanPipeline pipeline(&model, &data.train, &data.test, options);

  const DseOutcome outcome = pipeline.explore([](int done, int total) {
    std::printf("\r[cli] DSE %d/%d", done, total);
    std::fflush(stdout);
  });
  std::printf("\n[cli] sweep (%s): %lld image evals, %lld prefix-cache "
              "hits, %d early exits\n",
              args.exact_sweep ? "exact" : "fast",
              static_cast<long long>(outcome.images_evaluated),
              static_cast<long long>(outcome.cache_hits),
              outcome.early_exits);
  const int idx = pipeline.select(outcome, args.loss);
  check(idx >= 0, "no design satisfies the requested accuracy budget");
  const DseResult& chosen = outcome.results[static_cast<size_t>(idx)];
  std::printf("[cli] selected %s\n", chosen.config.to_string().c_str());

  const DeployReport cmsis = pipeline.deploy_engine("cmsis", args.eval_images);
  const DeployReport xcube = pipeline.deploy_engine("xcube", args.eval_images);
  DeployReport ours;
  if (args.hybrid) {
    const SkipMask mask = pipeline.mask_for(chosen.config);
    const HybridPlan plan = select_layers_to_unpack(
        model, mask, pipeline.options().board.flash_bytes);
    const std::vector<uint8_t> selection = plan.unpack_selection();
    EngineConfig cfg;
    cfg.model = &model;
    cfg.mask = &mask;
    cfg.unpack_selection = &selection;
    cfg.costs = pipeline.options().costs;
    cfg.memory = pipeline.options().memory;
    cfg.design_name = "ataman-hybrid";
    const auto engine = EngineRegistry::instance().create("unpacked", cfg);
    ours = engine->deploy(data.test, pipeline.options().board,
                          args.eval_images);
  } else {
    // Deploy the chosen design through the requested backend. Mask-aware
    // backends (unpacked, ref) execute the approximate design; exact
    // backends (cmsis, xcube) ignore the mask and report their exact
    // operating point.
    ours = pipeline.deploy_engine(
        args.engine, args.eval_images, &chosen.config,
        args.engine == "unpacked" ? "ataman" : "");
  }

  for (const DeployReport* r :
       {&cmsis, &xcube, static_cast<const DeployReport*>(&ours)}) {
    std::printf("[cli] %-14s %-8s (%s)  acc %.4f  %7.2f ms  %6.0f KB  "
                "%.3f mJ\n",
                r->design.c_str(), r->network.c_str(), r->topology.c_str(),
                r->top1_accuracy, r->latency_ms,
                static_cast<double>(r->flash_bytes) / 1024.0, r->energy_mj);
  }

  ScoredAccuracy scored;
  if (model.head == TaskHead::kScore) {
    // Threshold-free quality of the scored head: the accuracy column
    // above is thresholded, AUC ranks the raw reconstruction scores.
    EngineConfig ref_cfg;
    ref_cfg.model = &model;
    const auto ref = EngineRegistry::instance().create("ref", ref_cfg);
    scored = evaluate_scored(*ref, data.test, args.eval_images);
    std::printf("[cli] scored head: threshold %.6f, AUC %.4f over %d "
                "images\n",
                static_cast<double>(model.score_threshold), scored.auc,
                scored.images);
  }

  if (args.serve) {
    // Serving demo: mixed exact/approximate traffic for the selected
    // design through the batched async runtime, cross-checked bitwise
    // against serial execution (the determinism contract).
    const SkipMask serve_mask = pipeline.mask_for(chosen.config);
    struct ServeKey {
      const char* engine;
      const SkipMask* mask;
    };
    const ServeKey keys[] = {
        {"unpacked", &serve_mask},
        {"cmsis", nullptr},
        {"ref", &serve_mask},
        {"xcube", nullptr},
    };
    std::vector<serve::InferRequest> traffic;
    traffic.reserve(static_cast<size_t>(args.requests));
    for (int i = 0; i < args.requests; ++i) {
      const ServeKey& key = keys[static_cast<size_t>(i) % std::size(keys)];
      serve::InferRequest r;
      r.engine = key.engine;
      r.mask = key.mask;
      const auto img = data.test.image(i % data.test.size());
      r.image.assign(img.begin(), img.end());
      traffic.push_back(std::move(r));
    }

    serve::ServeOptions serve_options;
    serve_options.workers = args.serve_workers;
    serve_options.max_batch = args.serve_batch;
    serve::InferenceServer server(&model, serve_options);
    Stopwatch sw;
    const std::vector<serve::InferFuture> futures =
        server.submit_all(std::vector<serve::InferRequest>(traffic));
    server.drain();
    const double wall_ms = sw.millis();

    // Serial oracles: one engine per configuration, reused across the
    // cross-check (the whole point of the runtime's engine pool).
    std::vector<std::unique_ptr<InferenceEngine>> oracles;
    for (const ServeKey& key : keys) {
      EngineConfig cfg;
      cfg.model = &model;
      cfg.mask = key.mask;
      oracles.push_back(EngineRegistry::instance().create(key.engine, cfg));
    }
    int mismatches = 0;
    for (size_t i = 0; i < traffic.size(); ++i) {
      const auto& serial = oracles[i % std::size(keys)];
      if (futures[i].get().logits != serial->run(traffic[i].image))
        ++mismatches;
    }
    const serve::ServeStats stats = server.stats();
    std::printf(
        "[serve] %d requests, %d workers, max batch %d: %.1f ms "
        "(%.0f req/s)\n",
        args.requests, args.serve_workers, args.serve_batch, wall_ms,
        1e3 * args.requests / wall_ms);
    std::printf(
        "[serve] %lld micro-batches (max fill %lld), %lld coalesced, "
        "%lld prototypes + %lld clones in the pool\n",
        static_cast<long long>(stats.batches),
        static_cast<long long>(stats.max_batch_seen),
        static_cast<long long>(stats.coalesced),
        static_cast<long long>(stats.pool.prototypes_built),
        static_cast<long long>(stats.pool.engines_cloned));
    check(mismatches == 0, "serve results diverged from serial execution");
    std::printf("[serve] all %d results bitwise identical to serial runs\n",
                args.requests);
  }

  if (!args.emit_path.empty()) {
    write_text_file(args.emit_path, pipeline.generate_code(chosen.config));
    std::printf("[cli] wrote %s\n", args.emit_path.c_str());
  }
  if (!args.json_path.empty()) {
    JsonObject root;
    root.emplace("model", args.model);
    root.emplace("loss_budget", args.loss);
    root.emplace("config", chosen.config.to_json());
    root.emplace("exact_accuracy", outcome.exact_accuracy);
    root.emplace("conv_mac_reduction", chosen.conv_mac_reduction);
    root.emplace("configs_evaluated",
                 static_cast<int64_t>(outcome.results.size()));
    root.emplace("pareto_points",
                 static_cast<int64_t>(outcome.pareto.size()));
    root.emplace("sweep_cache_hits", static_cast<int64_t>(outcome.cache_hits));
    root.emplace("sweep_images_evaluated",
                 static_cast<int64_t>(outcome.images_evaluated));
    root.emplace("sweep_early_exits", outcome.early_exits);
    if (model.head == TaskHead::kScore) {
      root.emplace("score_threshold",
                   static_cast<double>(model.score_threshold));
      root.emplace("score_auc", scored.auc);
    }
    JsonArray reports;
    reports.push_back(report_json(cmsis));
    reports.push_back(report_json(xcube));
    reports.push_back(report_json(ours));
    root.emplace("deployments", std::move(reports));
    write_text_file(args.json_path, Json(std::move(root)).dump_pretty());
    std::printf("[cli] wrote %s\n", args.json_path.c_str());
  }
  return 0;
}
