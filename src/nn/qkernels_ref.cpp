#include "src/nn/qkernels_ref.hpp"

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"

namespace ataman {

int32_t conv_accumulate_ref(const QConv2D& layer, std::span<const int8_t> in,
                            int oy, int ox, int oc, const uint8_t* skip) {
  const ConvGeom& g = layer.geom;
  const int patch = g.patch_size();
  const int8_t* w =
      layer.weights.data() + static_cast<size_t>(oc) * patch;
  const uint8_t* sk =
      skip != nullptr ? skip + static_cast<size_t>(oc) * patch : nullptr;

  int32_t acc = layer.bias[static_cast<size_t>(oc)];
  int idx = 0;
  for (int ky = 0; ky < g.kernel; ++ky) {
    const int iy = oy * g.stride - g.pad + ky;
    for (int kx = 0; kx < g.kernel; ++kx) {
      const int ix = ox * g.stride - g.pad + kx;
      const bool inside = iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
      for (int c = 0; c < g.in_c; ++c, ++idx) {
        if (sk != nullptr && sk[idx]) continue;
        // Padding taps read the zero-point, i.e. real value 0.
        const int32_t x =
            inside ? in[(static_cast<size_t>(iy) * g.in_w + ix) * g.in_c + c]
                   : layer.in.zero_point;
        acc += (x - layer.in.zero_point) * static_cast<int32_t>(w[idx]);
      }
    }
  }
  return acc;
}

void conv2d_ref(const QConv2D& layer, std::span<const int8_t> in,
                std::span<int8_t> out, const uint8_t* skip) {
  const ConvGeom& g = layer.geom;
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(g.in_h) * g.in_w * g.in_c,
        "conv input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(g.positions()) * g.out_c,
        "conv output size mismatch");

  const int oh = g.out_h(), ow = g.out_w();
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      int8_t* orow = out.data() + (static_cast<size_t>(oy) * ow + ox) * g.out_c;
      for (int oc = 0; oc < g.out_c; ++oc) {
        const int32_t acc = conv_accumulate_ref(layer, in, oy, ox, oc, skip);
        const int32_t scaled =
            multiply_by_quantized_multiplier(acc, layer.requant) +
            layer.out.zero_point;
        orow[oc] = static_cast<int8_t>(
            std::clamp(scaled, layer.act_min, layer.act_max));
      }
    }
  }
}

void maxpool_ref(const QMaxPool& layer, std::span<const int8_t> in,
                 std::span<int8_t> out) {
  const int oh = layer.out_h(), ow = layer.out_w(), c = layer.channels;
  check(static_cast<int64_t>(in.size()) ==
            static_cast<int64_t>(layer.in_h) * layer.in_w * c,
        "pool input size mismatch");
  check(static_cast<int64_t>(out.size()) ==
            static_cast<int64_t>(oh) * ow * c,
        "pool output size mismatch");
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int ch = 0; ch < c; ++ch) {
        int8_t best = -128;
        for (int ky = 0; ky < layer.kernel; ++ky) {
          const int iy = oy * layer.stride + ky;
          if (iy >= layer.in_h) continue;
          for (int kx = 0; kx < layer.kernel; ++kx) {
            const int ix = ox * layer.stride + kx;
            if (ix >= layer.in_w) continue;
            best = std::max(
                best, in[(static_cast<size_t>(iy) * layer.in_w + ix) * c + ch]);
          }
        }
        out[(static_cast<size_t>(oy) * ow + ox) * c + ch] = best;
      }
    }
  }
}

void dense_ref(const QDense& layer, std::span<const int8_t> in,
               std::span<int8_t> out) {
  check(static_cast<int>(in.size()) == layer.in_dim, "dense input mismatch");
  check(static_cast<int>(out.size()) == layer.out_dim, "dense output mismatch");
  for (int o = 0; o < layer.out_dim; ++o) {
    const int8_t* w =
        layer.weights.data() + static_cast<size_t>(o) * layer.in_dim;
    int32_t acc = layer.bias[static_cast<size_t>(o)];
    for (int i = 0; i < layer.in_dim; ++i) {
      acc += (static_cast<int32_t>(in[static_cast<size_t>(i)]) -
              layer.in.zero_point) *
             static_cast<int32_t>(w[i]);
    }
    const int32_t scaled =
        multiply_by_quantized_multiplier(acc, layer.requant) +
        layer.out.zero_point;
    out[static_cast<size_t>(o)] =
        static_cast<int8_t>(std::clamp(scaled, layer.act_min, layer.act_max));
  }
}

}  // namespace ataman
