#include "src/sig/significance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/error.hpp"

namespace ataman {

LayerSignificance compute_significance(const QConv2D& layer,
                                       const ConvInputStats& stats) {
  const int patch = layer.geom.patch_size();
  const int out_c = layer.geom.out_c;
  check(static_cast<int>(stats.mean_corrected.size()) == patch,
        "activation stats do not match layer patch size");

  LayerSignificance sig;
  sig.out_c = out_c;
  sig.patch = patch;
  sig.S.resize(static_cast<size_t>(out_c) * patch);
  sig.ascending.resize(static_cast<size_t>(out_c));

  for (int oc = 0; oc < out_c; ++oc) {
    const int8_t* w =
        layer.weights.data() + static_cast<size_t>(oc) * patch;
    // Expected channel sum (bias excluded: Eq. (2) normalizes over the
    // weighted-sum part of Eq. (1)).
    double denom = 0.0;
    for (int i = 0; i < patch; ++i)
      denom += stats.mean_corrected[static_cast<size_t>(i)] *
               static_cast<double>(w[i]);

    float* srow = sig.S.data() + static_cast<size_t>(oc) * patch;
    if (denom == 0.0) {
      // Zero-sum rule: consider every S_i large -> retain all products.
      std::fill(srow, srow + patch, kAlwaysRetain);
    } else {
      for (int i = 0; i < patch; ++i) {
        const double contrib =
            stats.mean_corrected[static_cast<size_t>(i)] *
            static_cast<double>(w[i]);
        srow[i] = static_cast<float>(std::abs(contrib / denom));
      }
    }

    auto& order = sig.ascending[static_cast<size_t>(oc)];
    order.resize(static_cast<size_t>(patch));
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) { return srow[a] < srow[b]; });
  }
  return sig;
}

std::vector<LayerSignificance> compute_model_significance(
    const QModel& model, const std::vector<ConvInputStats>& stats) {
  check(static_cast<int>(stats.size()) == model.conv_layer_count(),
        "stats/convolution count mismatch");
  std::vector<LayerSignificance> out;
  int ordinal = 0;
  for (const QLayer& layer : model.layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      out.push_back(compute_significance(
          *conv, stats[static_cast<size_t>(ordinal)]));
      ++ordinal;
    }
  }
  return out;
}

}  // namespace ataman
