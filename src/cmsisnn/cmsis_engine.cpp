#include "src/cmsisnn/cmsis_engine.hpp"

#include <algorithm>
#include <atomic>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

CmsisEngine::CmsisEngine(const QModel* model, CortexM33CostTable costs,
                         MemoryCostTable memory)
    : model_(model), costs_(costs), memory_(memory) {
  check(model != nullptr, "engine needs a model");

  int out_dim = 0;
  double cycles = 0.0;
  for (const QLayer& layer : model_->layers) {
    cycles += costs_.layer_dispatch;
    profile_.push_back({"dispatch",
                        static_cast<int64_t>(costs_.layer_dispatch), 0});
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      packed_.push_back(PackedWeights::pack(conv->weights, conv->geom.out_c,
                                            conv->geom.patch_size()));
      const int64_t c = packed_conv_cycles(*conv, costs_);
      profile_.push_back({"conv", c, conv->geom.macs()});
      cycles += static_cast<double>(c);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      const int64_t c = pool_cycles(*pool, costs_);
      profile_.push_back({"pool", c, 0});
      cycles += static_cast<double>(c);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_.push_back(
          PackedWeights::pack(fc->weights, fc->out_dim, fc->in_dim));
      const int64_t c = dense_cycles(*fc, costs_);
      profile_.push_back({"fc", c, fc->macs()});
      cycles += static_cast<double>(c);
      out_dim = fc->out_dim;
    }
  }
  const auto softmax_c =
      static_cast<int64_t>(costs_.softmax_per_logit * out_dim);
  profile_.push_back({"softmax", softmax_c, 0});
  cycles += static_cast<double>(softmax_c);
  total_cycles_ = static_cast<int64_t>(cycles);
}

std::vector<int8_t> CmsisEngine::run(std::span<const uint8_t> image) const {
  const int64_t expected =
      static_cast<int64_t>(model_->in_h) * model_->in_w * model_->in_c;
  check(static_cast<int64_t>(image.size()) == expected,
        "input image size mismatch");

  std::vector<int8_t> cur(image.size());
  for (size_t i = 0; i < image.size(); ++i)
    cur[i] = model_->input.quantize(static_cast<float>(image[i]) / 255.0f);

  std::vector<int8_t> next;
  size_t packed_idx = 0;
  for (const QLayer& layer : model_->layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      next.assign(
          static_cast<size_t>(conv->geom.positions()) * conv->geom.out_c, 0);
      packed_conv2d(*conv, packed_[packed_idx++], cur, next);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      next.assign(static_cast<size_t>(pool->out_h()) * pool->out_w() *
                      pool->channels,
                  0);
      maxpool_ref(*pool, cur, next);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      next.assign(static_cast<size_t>(fc->out_dim), 0);
      packed_dense(*fc, packed_[packed_idx++], cur, next);
    }
    cur.swap(next);
  }
  return cur;
}

int CmsisEngine::classify(std::span<const uint8_t> image) const {
  const std::vector<int8_t> logits = run(image);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

DeployReport CmsisEngine::deploy(const Dataset& eval, const BoardSpec& board,
                                 int limit) const {
  const int n = limit < 0 ? eval.size() : std::min(limit, eval.size());
  check(n > 0, "no images to evaluate");
  std::atomic<int> correct{0};
  parallel_for(0, n, [&](int64_t i) {
    if (classify(eval.image(static_cast<int>(i))) ==
        eval.label(static_cast<int>(i)))
      correct.fetch_add(1, std::memory_order_relaxed);
  });

  DeployReport r;
  r.design = "cmsis-nn";
  r.network = model_->name;
  r.top1_accuracy = static_cast<double>(correct.load()) / n;
  r.cycles = total_cycles_;
  r.mac_ops = model_->mac_count();
  r.flash_bytes = packed_flash(*model_, memory_).total_bytes;
  r.ram_bytes = model_ram_bytes(*model_, /*packed_engine=*/true, memory_);
  r.per_layer = profile_;
  r.finalize(board);
  return r;
}

}  // namespace ataman
