// Table II — CMSIS-NN vs X-CUBE-AI vs the proposed framework at three
// accuracy-loss thresholds (0%, 5%, 10%): Top-1, latency, flash, #MACs,
// energy. Also prints the §III headline claims (average speedup at 0% and
// ~10% loss). Every comparator row is produced through the EngineRegistry
// — adding a backend adds a Table II column with no wiring here.
#include "bench/bench_common.hpp"

namespace {

using namespace ataman;
using namespace ataman::bench;

struct Row {
  std::string label;
  DeployReport report;
  PaperTable2Row paper;
};

void add_rows(ConsoleTable& table, CsvWriter& csv, const std::string& network,
              const std::vector<Row>& rows) {
  const auto emit = [&](const std::string& net, const std::string& label,
                        double acc, double lat, double flash_kb, double mac_m,
                        double energy, const std::string& kind) {
    table.row({net, label, kind, fmt(acc, 1), fmt(lat, 1),
               fmt(flash_kb, 0), fmt(mac_m, 1) + "M", fmt(energy, 2)});
  };
  for (const Row& r : rows) {
    // Measured rows carry the report's block-notation topology alongside
    // the network name.
    emit(network, r.label, r.paper.accuracy, r.paper.latency_ms,
         r.paper.flash_kb, r.paper.mac_m, r.paper.energy_mj, "paper");
    emit(network + " (" + r.report.topology + ")", r.label,
         100 * r.report.top1_accuracy, r.report.latency_ms,
         static_cast<double>(r.report.flash_bytes) / 1024.0,
         static_cast<double>(r.report.mac_ops) / 1e6, r.report.energy_mj,
         "measured");
    csv.row({network, r.label,
             CsvWriter::num(100 * r.report.top1_accuracy),
             CsvWriter::num(r.report.latency_ms),
             CsvWriter::num(static_cast<double>(r.report.flash_bytes) / 1024.0),
             CsvWriter::num(static_cast<double>(r.report.mac_ops)),
             CsvWriter::num(r.report.energy_mj)});
  }
  table.separator();
}

std::vector<Row> bench_network(const BenchModel& m, Scale scale,
                               ConsoleTable& table, CsvWriter& csv,
                               double* speedup0, double* speedup10) {
  PipelineOptions opts;
  opts.dse = dse_options_for(m.name, scale);
  AtamanPipeline pipe(&m.qmodel, &m.data.train, &m.data.test, opts);

  const int eval_limit = scale == Scale::kQuick ? 400 : -1;
  std::printf("[%s] running DSE...\n", m.name.c_str());
  std::fflush(stdout);
  const DseOutcome outcome = pipe.explore();

  std::vector<Row> rows;
  rows.push_back({"CMSIS-NN", pipe.deploy_engine("cmsis", eval_limit),
                  paper_table2(m.name, "cmsis")});
  rows.push_back({"X-CUBE-AI", pipe.deploy_engine("xcube", eval_limit),
                  paper_table2(m.name, "xcube")});

  const double losses[] = {0.0, 0.05, 0.10};
  const char* keys[] = {"ours0", "ours5", "ours10"};
  const char* labels[] = {"ours(0%)", "ours(5%)", "ours(10%)"};
  for (int i = 0; i < 3; ++i) {
    const int idx = pipe.select(outcome, losses[i]);
    check(idx >= 0, "no design satisfies the accuracy threshold");
    rows.push_back(
        {labels[i],
         pipe.deploy(outcome.results[static_cast<size_t>(idx)].config,
                     labels[i], eval_limit),
         paper_table2(m.name, keys[i])});
  }

  const double base_lat = rows[0].report.latency_ms;
  *speedup0 = 1.0 - rows[2].report.latency_ms / base_lat;
  *speedup10 = 1.0 - rows[4].report.latency_ms / base_lat;

  add_rows(table, csv, m.name, rows);
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = parse_scale(argc, argv);
  print_header(
      "Table II: CMSIS-NN vs X-CUBE-AI vs proposed (0/5/10% loss)", scale);

  ConsoleTable table({"Network", "Design", "Row", "Top-1(%)", "Latency(ms)",
                      "Flash(KB)", "#MAC", "Energy(mJ)"});
  CsvWriter csv(results_dir() + "/table2_comparison.csv",
                {"network", "design", "accuracy", "latency_ms", "flash_kb",
                 "macs", "energy_mj"});

  double lenet_s0 = 0, lenet_s10 = 0, alexnet_s0 = 0, alexnet_s10 = 0;
  const BenchModel lenet = load_lenet();
  bench_network(lenet, scale, table, csv, &lenet_s0, &lenet_s10);
  const BenchModel alexnet = load_alexnet();
  bench_network(alexnet, scale, table, csv, &alexnet_s0, &alexnet_s10);

  std::printf("%s\n", table.render("Table II (paper vs measured)").c_str());

  // §III headline claims.
  const double avg0 = 0.5 * (lenet_s0 + alexnet_s0);
  const double avg10 = 0.5 * (lenet_s10 + alexnet_s10);
  std::printf("headline: avg latency reduction vs CMSIS @ 0%%  loss: %5.1f%%"
              "   (paper: 21%%)\n",
              100 * avg0);
  std::printf("headline: avg latency reduction vs CMSIS @ 10%% loss: %5.1f%%"
              "   (paper: 36%%)\n",
              100 * avg10);
  std::printf("CSV: %s/table2_comparison.csv\n", results_dir().c_str());
  return 0;
}
