// Labelled image dataset container (NHWC uint8), the unit of exchange
// between the data substrate, the trainer, the quantizer's calibration
// pass and the DSE's accuracy evaluator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"

namespace ataman {

struct ImageShape {
  int height = 32;
  int width = 32;
  int channels = 3;

  int pixels() const { return height * width * channels; }
  bool operator==(const ImageShape&) const = default;
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(ImageShape shape, int num_classes);

  // Append one image; `pixels` must have shape.pixels() elements.
  void add(std::span<const uint8_t> pixels, int label);

  int size() const { return static_cast<int>(labels_.size()); }
  const ImageShape& shape() const { return shape_; }
  int num_classes() const { return num_classes_; }

  std::span<const uint8_t> image(int index) const;
  int label(int index) const;

  // Deterministically shuffle image order.
  void shuffle(Rng& rng);

  // First `n` images as a new dataset (use after shuffle for subsets).
  Dataset head(int n) const;

  // Per-class histogram (size num_classes).
  std::vector<int> class_histogram() const;

  // Mean/stddev over all pixel values (dataset sanity metrics).
  double pixel_mean() const;
  double pixel_stddev() const;

 private:
  ImageShape shape_;
  int num_classes_ = 0;
  std::vector<uint8_t> pixels_;
  std::vector<uint8_t> labels_;
};

}  // namespace ataman
