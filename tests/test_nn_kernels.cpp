// Reference int8 kernels and engine: float-consistency, skip-mask
// semantics, parameterized shape sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/qkernels_ref.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_input;
using testing::make_random_qconv;
using testing::make_random_qdense;
using testing::make_random_skip;
using testing::make_tiny_qmodel;

// Float model of the quantized conv for consistency checking.
float float_conv_output(const QConv2D& conv, const std::vector<int8_t>& in,
                        int oy, int ox, int oc) {
  const ConvGeom& g = conv.geom;
  const int patch = g.patch_size();
  const int8_t* w = conv.weights.data() + static_cast<size_t>(oc) * patch;
  const float w_scale = conv.w_scales[static_cast<size_t>(oc)];
  double acc = static_cast<double>(conv.bias[static_cast<size_t>(oc)]) *
               conv.in.scale * w_scale;
  int idx = 0;
  for (int ky = 0; ky < g.kernel; ++ky) {
    const int iy = oy * g.stride - g.pad + ky;
    for (int kx = 0; kx < g.kernel; ++kx) {
      const int ix = ox * g.stride - g.pad + kx;
      const bool inside = iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
      for (int c = 0; c < g.in_c; ++c, ++idx) {
        const int32_t x =
            inside ? in[(static_cast<size_t>(iy) * g.in_w + ix) * g.in_c + c]
                   : conv.in.zero_point;
        acc += conv.in.scale * static_cast<double>(x - conv.in.zero_point) *
               w_scale * static_cast<double>(w[idx]);
      }
    }
  }
  return static_cast<float>(acc);
}

struct ConvCase {
  int in_h, in_w, in_c, out_c, kernel, stride, pad;
};

class ConvShapes : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapes, QuantizedMatchesFloatWithinOneStep) {
  const ConvCase& c = GetParam();
  ConvGeom g;
  g.in_h = c.in_h; g.in_w = c.in_w; g.in_c = c.in_c;
  g.out_c = c.out_c; g.kernel = c.kernel; g.stride = c.stride; g.pad = c.pad;
  const QConv2D conv = make_random_qconv(g, 1000 + c.kernel * 7 + c.in_c);
  const auto in = make_random_input(
      static_cast<int64_t>(g.in_h) * g.in_w * g.in_c, 55);
  std::vector<int8_t> out(static_cast<size_t>(g.positions()) * g.out_c);
  conv2d_ref(conv, in, out);

  for (int oy = 0; oy < g.out_h(); oy += 2) {
    for (int ox = 0; ox < g.out_w(); ox += 2) {
      for (int oc = 0; oc < g.out_c; oc += 3) {
        const float real = float_conv_output(conv, in, oy, ox, oc);
        const float real_q = std::clamp(
            real / conv.out.scale + conv.out.zero_point,
            static_cast<float>(conv.act_min),
            static_cast<float>(conv.act_max));
        const int8_t got =
            out[(static_cast<size_t>(oy) * g.out_w() + ox) * g.out_c + oc];
        EXPECT_NEAR(static_cast<float>(got), real_q, 1.01f)
            << "at (" << oy << "," << ox << "," << oc << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvShapes,
    ::testing::Values(ConvCase{8, 8, 3, 4, 3, 1, 1},
                      ConvCase{8, 8, 4, 6, 3, 1, 0},
                      ConvCase{10, 10, 2, 3, 5, 1, 2},
                      ConvCase{9, 7, 5, 4, 3, 2, 1},
                      ConvCase{6, 6, 1, 8, 1, 1, 0},
                      ConvCase{12, 12, 8, 2, 5, 2, 2}));

TEST(ConvRef, SkipMaskEqualsZeroedWeights) {
  // The DSE's core numerical assumption: skipping operand i == setting
  // w_i = 0 (the product (a - zp) * 0 vanishes).
  ConvGeom g;
  g.in_h = 7; g.in_w = 7; g.in_c = 4;
  g.out_c = 5; g.kernel = 3; g.stride = 1; g.pad = 1;
  const QConv2D conv = make_random_qconv(g, 77);
  const auto skip = make_random_skip(g, 0.4, 78);
  const auto in = make_random_input(
      static_cast<int64_t>(g.in_h) * g.in_w * g.in_c, 79);

  std::vector<int8_t> masked(static_cast<size_t>(g.positions()) * g.out_c);
  conv2d_ref(conv, in, masked, skip.data());

  QConv2D zeroed = conv;
  for (size_t i = 0; i < zeroed.weights.size(); ++i)
    if (skip[i]) zeroed.weights[i] = 0;
  std::vector<int8_t> out2(masked.size());
  conv2d_ref(zeroed, in, out2);

  EXPECT_EQ(masked, out2);
}

TEST(ConvRef, PaddingTapsContributeZero) {
  // An input equal to the zero point everywhere produces bias-only
  // outputs, identical with and without padding taps.
  ConvGeom g;
  g.in_h = 5; g.in_w = 5; g.in_c = 2;
  g.out_c = 3; g.kernel = 3; g.stride = 1; g.pad = 1;
  QConv2D conv = make_random_qconv(g, 123);
  std::vector<int8_t> in(static_cast<size_t>(g.in_h) * g.in_w * g.in_c,
                         static_cast<int8_t>(conv.in.zero_point));
  std::vector<int8_t> out(static_cast<size_t>(g.positions()) * g.out_c);
  conv2d_ref(conv, in, out);
  // All positions of one channel must be identical (pure bias).
  for (int oc = 0; oc < g.out_c; ++oc) {
    const int8_t first = out[static_cast<size_t>(oc)];
    for (int pos = 1; pos < g.positions(); ++pos)
      ASSERT_EQ(out[static_cast<size_t>(pos) * g.out_c + oc], first);
  }
}

TEST(MaxPoolRef, SelectsWindowMaximum) {
  QMaxPool pool;
  pool.in_h = 4; pool.in_w = 4; pool.channels = 1;
  pool.kernel = 2; pool.stride = 2;
  const std::vector<int8_t> in = {1, 5,  3, 4,   //
                                  2, -8, 7, 0,   //
                                  9, 9,  -1, -2, //
                                  0, 3,  -5, 6};
  std::vector<int8_t> out(4);
  maxpool_ref(pool, in, out);
  EXPECT_EQ(out, (std::vector<int8_t>{5, 7, 9, 6}));
}

TEST(MaxPoolRef, OddExtentDropsTail) {
  QMaxPool pool;
  pool.in_h = 5; pool.in_w = 5; pool.channels = 2;
  pool.kernel = 2; pool.stride = 2;
  EXPECT_EQ(pool.out_h(), 2);
  EXPECT_EQ(pool.out_w(), 2);
}

TEST(DenseRef, MatchesManualDotProduct) {
  QDense fc = make_random_qdense(6, 3, 200);
  const auto in = make_random_input(6, 201);
  std::vector<int8_t> out(3);
  dense_ref(fc, in, out);
  for (int o = 0; o < 3; ++o) {
    int32_t acc = fc.bias[static_cast<size_t>(o)];
    for (int i = 0; i < 6; ++i)
      acc += (static_cast<int32_t>(in[static_cast<size_t>(i)]) -
              fc.in.zero_point) *
             fc.weights[static_cast<size_t>(o) * 6 + i];
    const int32_t scaled =
        multiply_by_quantized_multiplier(acc, fc.requant) +
        fc.out.zero_point;
    EXPECT_EQ(out[static_cast<size_t>(o)],
              static_cast<int8_t>(std::clamp(scaled, fc.act_min, fc.act_max)));
  }
}

TEST(RefEngine, RunsTinyModelEndToEnd) {
  const QModel m = make_tiny_qmodel(3);
  RefEngine engine(&m);
  const auto img = testing::make_random_image(12 * 12 * 3, 44);
  const std::vector<int8_t> logits = engine.run(img);
  EXPECT_EQ(logits.size(), 10u);
  const int cls = engine.classify(img);
  EXPECT_GE(cls, 0);
  EXPECT_LT(cls, 10);
}

TEST(RefEngine, MaskValidationRejectsWrongShape) {
  const QModel m = make_tiny_qmodel(4);
  RefEngine engine(&m);
  SkipMask bad;
  bad.masks.push_back(std::vector<uint8_t>(7, 0));  // wrong size
  const auto img = testing::make_random_image(12 * 12 * 3, 45);
  EXPECT_THROW(engine.run(img, &bad), Error);
}

TEST(RefEngine, EmptyMaskIsExact) {
  const QModel m = make_tiny_qmodel(5);
  RefEngine engine(&m);
  const SkipMask none = SkipMask::none(m);
  const auto img = testing::make_random_image(12 * 12 * 3, 46);
  EXPECT_EQ(engine.run(img), engine.run(img, &none));
}

TEST(SkipMaskType, ApplySkipMaskEqualsMaskedExecution) {
  const QModel m = make_tiny_qmodel(7);
  SkipMask mask = SkipMask::none(m);
  Rng rng(8);
  for (auto& layer_mask : mask.masks)
    for (auto& v : layer_mask) v = rng.next_bool(0.4) ? 1 : 0;

  const QModel zeroed = apply_skip_mask(m, mask);
  RefEngine masked_engine(&m);
  RefEngine zeroed_engine(&zeroed);
  for (int i = 0; i < 15; ++i) {
    const auto img = testing::make_random_image(12 * 12 * 3, 950 + i);
    ASSERT_EQ(masked_engine.run(img, &mask), zeroed_engine.run(img));
  }
}

TEST(SkipMaskType, CountsAndValidation) {
  const QModel m = make_tiny_qmodel(6);
  SkipMask mask = SkipMask::none(m);
  EXPECT_TRUE(mask.empty());
  EXPECT_EQ(mask.skipped_macs(m), 0);
  // Skip the first 5 operands of conv0/channel0.
  for (int i = 0; i < 5; ++i) mask.masks[0][static_cast<size_t>(i)] = 1;
  EXPECT_FALSE(mask.empty());
  EXPECT_EQ(mask.skipped_static_operands(), 5);
  // conv0 is 12x12 output -> 144 positions.
  EXPECT_EQ(mask.skipped_macs(m), 5 * 144);
}

}  // namespace
}  // namespace ataman
