// Per-configuration evaluation: classification accuracy via masked
// inference through a registry-selected backend (default "ref" — running
// the masked reference model is numerically identical to running the
// skipped unpacked code) plus the static deployment metrics (retained
// MACs, predicted cycles, flash) from the MCU models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/mcu/board.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/mcu/stream_plan.hpp"
#include "src/sig/skip_plan.hpp"

namespace ataman {

struct DseResult {
  ApproxConfig config;
  double accuracy = 0.0;
  // True when `accuracy` is a partial sample left behind by the adaptive
  // sweep's early exit (never set on the all-exact config, a Pareto
  // member, or any result of an exact sweep). select_design skips
  // partial results: a lucky partial sample must not satisfy an
  // accuracy-loss budget its full-budget measurement would miss.
  bool partial_eval = false;
  // Retained conv/depthwise + fc MACs per inference.
  int64_t executed_macs = 0;
  // MACs skipped in the approximable (conv + depthwise) layers; the
  // `conv_` prefix is historical (pre-depthwise) and kept for the
  // serialized dse_io format.
  int64_t skipped_conv_macs = 0;
  double conv_mac_reduction = 0.0;  // Fig. 2 x-axis (approximable layers)
  int64_t cycles = 0;               // unpacked deployment cycles
  double latency_reduction = 0.0;   // vs. packed exact baseline
  int64_t flash_bytes = 0;          // unpacked deployment flash
  // Steady-state streaming row (0 when the evaluator has no stream
  // stride set): per-frame unpacked cycles / paper-board energy when
  // serving overlapping windows with temporal reuse
  // (src/mcu/stream_plan.hpp). A constrainable objective in
  // select_design.
  int64_t stream_cycles_per_frame = 0;
  double stream_energy_mj_per_frame = 0.0;
};

// Static (per-layer) unpacking statistics induced by a skip mask.
struct UnpackStats {
  std::vector<int64_t> static_pairs;    // by approximable-layer ordinal
  std::vector<int64_t> static_singles;  // by approximable-layer ordinal
  int64_t retained_conv_macs = 0;       // dynamic, per inference
};

UnpackStats compute_unpack_stats(const QModel& model, const SkipMask& mask);

class ConfigEvaluator {
 public:
  // `eval` must outlive the evaluator. `eval_images` caps accuracy
  // evaluation (-1 = all). `accuracy_engine` is the EngineRegistry name of
  // the backend accuracy is measured through; any exact (bit-exact with
  // the reference) backend gives identical sweeps.
  ConfigEvaluator(const QModel* model,
                  const std::vector<LayerSignificance>* significance,
                  const Dataset* eval, int eval_images,
                  CortexM33CostTable costs = {}, MemoryCostTable memory = {},
                  std::string accuracy_engine = "ref");

  DseResult evaluate(const ApproxConfig& config) const;

  // The static (per-inference) deployment metrics only — everything in
  // DseResult except accuracy, which is left 0. The prefix-cached sweep
  // (src/dse/prefix_cache + src/dse/adaptive_eval) measures accuracy for
  // the whole config space at once and fills it in afterwards; evaluate()
  // is evaluate_static() plus the legacy per-config accuracy measurement.
  DseResult evaluate_static(const ApproxConfig& config) const;

  // Cycle count of the packed exact baseline (latency_reduction reference).
  int64_t baseline_cycles() const { return baseline_cycles_; }
  int64_t conv_total_macs() const { return conv_total_macs_; }

  // Enable the steady-state streaming row: every subsequent result also
  // prices the per-frame unpacked deployment of overlapping windows
  // advancing `stride_cols` columns per frame (0 disables; the splice
  // plan is geometry-only, so it is computed once here, not per config).
  // Energy uses the default BoardSpec — the paper board. Not
  // thread-safe: set before the sweep starts.
  void set_stream_stride(int stride_cols);
  int stream_stride() const { return stream_stride_; }

  // Wiring the fast sweep path needs (run_dse builds the prefix cache
  // from the same model/significance/eval set this evaluator scores).
  const QModel& model() const { return *model_; }
  const std::vector<LayerSignificance>& significance() const {
    return *significance_;
  }
  const Dataset& eval_set() const { return *eval_; }
  int eval_images() const { return eval_images_; }
  const std::string& accuracy_engine() const { return accuracy_engine_; }

 private:
  // Static metrics for a config whose skip mask is already built (both
  // public evaluation entry points share this; the mask is O(weights) to
  // construct, so it is built exactly once per call).
  DseResult static_metrics(const ApproxConfig& config,
                           const SkipMask& mask) const;

  const QModel* model_;
  const std::vector<LayerSignificance>* significance_;
  const Dataset* eval_;
  int eval_images_;
  CortexM33CostTable costs_;
  MemoryCostTable memory_;
  std::string accuracy_engine_;
  int64_t baseline_cycles_ = 0;
  int64_t conv_total_macs_ = 0;
  int64_t fc_total_macs_ = 0;
  int stream_stride_ = 0;
  StreamPlan stream_plan_;  // steady-state plan when stream_stride_ > 0
};

}  // namespace ataman
