// Full-model approximate engine: unpacked conv layers (with optional
// significance skipping baked in), packed FC, reference pooling. This is
// the "Proposed (ours)" column of Table II.
//
// Hybrid deployments (see layer_selection.hpp) may keep individual conv
// layers on the packed CMSIS-style kernel instead: pass an
// `unpack_selection` vector (one flag per conv ordinal). Packed layers
// execute exactly (skips only remove instructions from *unpacked* code),
// keep their weights in the flash data segment, and are costed with the
// packed kernel model.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/cmsisnn/packed_kernels.hpp"
#include "src/data/dataset.hpp"
#include "src/mcu/board.hpp"
#include "src/mcu/cost_model.hpp"
#include "src/mcu/deploy_report.hpp"
#include "src/mcu/memory_model.hpp"
#include "src/nn/skip_mask.hpp"
#include "src/quant/qtypes.hpp"
#include "src/unpack/unpacked_layer.hpp"

namespace ataman {

class UnpackedEngine {
 public:
  // `mask` == nullptr -> exact unpacking (no skips).
  // `unpack_selection` == nullptr -> every conv layer is unpacked (the
  // paper's policy); otherwise one 0/1 flag per conv ordinal.
  UnpackedEngine(const QModel* model, const SkipMask* mask = nullptr,
                 CortexM33CostTable costs = {}, MemoryCostTable memory = {},
                 const std::vector<uint8_t>* unpack_selection = nullptr);

  std::vector<int8_t> run(std::span<const uint8_t> image) const;
  int classify(std::span<const uint8_t> image) const;

  int64_t total_cycles() const { return total_cycles_; }
  // Executed (retained) conv MACs + FC MACs per inference.
  int64_t executed_macs() const { return executed_macs_; }
  const std::vector<LayerProfile>& layer_profile() const { return profile_; }
  int unpacked_conv_count() const;

  FlashReport flash(const MemoryCostTable& t = {}) const;

  DeployReport deploy(const Dataset& eval, const BoardSpec& board,
                      int limit = -1,
                      const std::string& design_name = "ataman") const;

  const QModel& model() const { return *model_; }

 private:
  // Per conv ordinal: exactly one of `unpacked`/`packed` is engaged.
  struct ConvExec {
    bool is_unpacked = true;
    std::optional<UnpackedConv> unpacked;
    std::optional<PackedWeights> packed;
  };

  const QModel* model_;
  CortexM33CostTable costs_;
  MemoryCostTable memory_;
  std::vector<ConvExec> convs_;            // by conv ordinal
  std::vector<PackedWeights> packed_fc_;   // by fc ordinal
  std::vector<LayerProfile> profile_;
  int64_t total_cycles_ = 0;
  int64_t executed_macs_ = 0;
};

}  // namespace ataman
