#include "src/cmsisnn/cmsis_engine.hpp"

#include "src/common/error.hpp"
#include "src/nn/qkernels_ref.hpp"

namespace ataman {

CmsisEngine::CmsisEngine(const QModel* model, CortexM33CostTable costs,
                         MemoryCostTable memory)
    : InferenceEngine(model, "cmsis-nn"), costs_(costs), memory_(memory) {
  int out_dim = 0;
  double cycles = 0.0;
  for (const QLayer& layer : this->model().layers) {
    cycles += costs_.layer_dispatch;
    profile_.push_back({"dispatch",
                        static_cast<int64_t>(costs_.layer_dispatch), 0});
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      packed_.push_back(PackedWeights::pack(conv->weights, conv->geom.out_c,
                                            conv->geom.patch_size()));
      const int64_t c = packed_conv_cycles(*conv, costs_);
      profile_.push_back({"conv", c, conv->geom.macs()});
      cycles += static_cast<double>(c);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      // Depthwise runs the scalar loop kernel; no packed weight stream
      // (see packed_depthwise_conv2d).
      const int64_t c = packed_depthwise_cycles(*dw, costs_);
      profile_.push_back({"depthwise", c, dw->macs()});
      cycles += static_cast<double>(c);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      const int64_t c = pool_cycles(*pool, costs_);
      profile_.push_back({"pool", c, 0});
      cycles += static_cast<double>(c);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      const int64_t c = avgpool_cycles(*pool, costs_);
      profile_.push_back({"avgpool", c, 0});
      cycles += static_cast<double>(c);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_.push_back(
          PackedWeights::pack(fc->weights, fc->out_dim, fc->in_dim));
      const int64_t c = dense_cycles(*fc, costs_);
      profile_.push_back({"fc", c, fc->macs()});
      cycles += static_cast<double>(c);
      out_dim = fc->out_dim;
    }
  }
  const auto softmax_c =
      static_cast<int64_t>(costs_.softmax_per_logit * out_dim);
  profile_.push_back({"softmax", softmax_c, 0});
  cycles += static_cast<double>(softmax_c);
  total_cycles_ = static_cast<int64_t>(cycles);
}

std::vector<int8_t> CmsisEngine::run(std::span<const uint8_t> image) const {
  std::vector<int8_t> cur = quantize_input(image);
  std::vector<int8_t> next;
  size_t packed_idx = 0;
  for (const QLayer& layer : model().layers) {
    next.assign(static_cast<size_t>(describe_layer(layer).out_elems), 0);
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      packed_conv2d(*conv, packed_[packed_idx++], cur, next);
    } else if (const auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      packed_depthwise_conv2d(*dw, cur, next);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      maxpool_ref(*pool, cur, next);
    } else if (const auto* pool = std::get_if<QAvgPool>(&layer)) {
      avgpool_ref(*pool, cur, next);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      packed_dense(*fc, packed_[packed_idx++], cur, next);
    }
    cur.swap(next);
  }
  return cur;
}

int64_t CmsisEngine::flash_bytes() const {
  return packed_flash(model(), memory_).total_bytes;
}

int64_t CmsisEngine::ram_bytes() const {
  return model_ram_bytes(model(), /*packed_engine=*/true, memory_);
}

}  // namespace ataman
