// Skip mask: which static approximable products are omitted.
//
// The paper's approximation (§II-C) removes individual products a_i * w_i
// from each output channel's accumulation. A skipped product is a *static*
// (approximable layer, channel, filter operand index) triple. Approximable
// layers are the convolution kinds — plain conv and depthwise conv — in
// layer order; `ordinal` below always means the n-th approximable layer
// (QModel::approx_layer_index). The operand index is
//   * plain conv:     the (ky, kx, in_c)-flattened position within the
//                     output channel's filter (the im2col order), and
//   * depthwise conv: the (ky, kx)-flattened tap position within the
//                     channel's own k×k filter (dw_weight_index maps it
//                     into the [k][k][c] weight tensor).
// Skipping removes that operand at every output spatial position, exactly
// like deleting its instruction from generated code.
#pragma once

#include <cstdint>
#include <vector>

#include "src/quant/qtypes.hpp"

namespace ataman {

struct SkipMask {
  // masks[approx_ordinal][channel * patch + operand] == 1 -> skip.
  // An empty per-layer vector means "layer untouched".
  std::vector<std::vector<uint8_t>> masks;

  bool empty() const;
  // Total number of skipped static operands.
  int64_t skipped_static_operands() const;

  // Dynamic (per-inference) MACs removed from `model` by this mask:
  // each skipped static operand saves out_h*out_w MACs in its layer.
  int64_t skipped_macs(const QModel& model) const;

  // Validate dimensions against `model`; throws on mismatch.
  void validate(const QModel& model) const;

  // All-zeros mask shaped for `model`.
  static SkipMask none(const QModel& model);
};

// A copy of `model` with every skipped conv/depthwise weight set to zero.
// The quantized product (a - zp) * w vanishes for w == 0, so running the
// masked copy through any exact engine is numerically identical to
// skip-aware execution — and faster to evaluate (no per-MAC branch),
// which is what the DSE uses for its thousands of accuracy evaluations.
QModel apply_skip_mask(const QModel& model, const SkipMask& mask);

// Zero the weights of one approximable layer in place according to its
// per-layer mask (the mask/weight index mapping point shared by
// apply_skip_mask and the DSE prefix cache).
void zero_skipped_weights(QLayer& layer, const std::vector<uint8_t>& mask);

}  // namespace ataman
