#include "src/quant/qtypes.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/math_util.hpp"

namespace ataman {

int8_t QuantParams::quantize(float real) const {
  check(scale > 0.0f, "quantization scale must be positive");
  const int32_t q = round_to_int32(real / scale) + zero_point;
  return saturate_int8(q);
}

float QuantParams::dequantize(int8_t q) const {
  return scale * static_cast<float>(static_cast<int32_t>(q) - zero_point);
}

int64_t QModel::mac_count() const {
  int64_t total = 0;
  for (const QLayer& layer : layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      total += conv->geom.macs();
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      total += fc->macs();
    }
  }
  return total;
}

int64_t QModel::conv_mac_count() const {
  int64_t total = 0;
  for (const QLayer& layer : layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer))
      total += conv->geom.macs();
  }
  return total;
}

int QModel::conv_layer_count() const {
  int count = 0;
  for (const QLayer& layer : layers)
    if (std::holds_alternative<QConv2D>(layer)) ++count;
  return count;
}

int QModel::conv_layer_index(int n) const {
  int seen = 0;
  for (size_t i = 0; i < layers.size(); ++i) {
    if (std::holds_alternative<QConv2D>(layers[i])) {
      if (seen == n) return static_cast<int>(i);
      ++seen;
    }
  }
  fail("conv layer ordinal out of range");
}

int64_t QModel::weight_bytes() const {
  int64_t total = 0;
  for (const QLayer& layer : layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      total += static_cast<int64_t>(conv->weights.size()) +
               static_cast<int64_t>(conv->bias.size()) * 4;
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      total += static_cast<int64_t>(fc->weights.size()) +
               static_cast<int64_t>(fc->bias.size()) * 4;
    }
  }
  return total;
}

std::pair<int64_t, int64_t> QModel::two_largest_activations() const {
  std::vector<int64_t> sizes;
  sizes.push_back(static_cast<int64_t>(in_h) * in_w * in_c);
  for (const QLayer& layer : layers) {
    if (const auto* conv = std::get_if<QConv2D>(&layer)) {
      sizes.push_back(static_cast<int64_t>(conv->geom.positions()) *
                      conv->geom.out_c);
    } else if (const auto* pool = std::get_if<QMaxPool>(&layer)) {
      sizes.push_back(static_cast<int64_t>(pool->out_h()) * pool->out_w() *
                      pool->channels);
    } else if (const auto* fc = std::get_if<QDense>(&layer)) {
      sizes.push_back(fc->out_dim);
    }
  }
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return {sizes[0], sizes.size() > 1 ? sizes[1] : 0};
}

}  // namespace ataman
