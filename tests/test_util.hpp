// Shared helpers for the test suite: deterministic random quantized
// layers/models and inputs, so kernel-equivalence and DSE properties can
// be tested across many shapes without training anything.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/quant/qtypes.hpp"

namespace ataman::testing {

inline QuantParams random_act_params(Rng& rng) {
  QuantParams p;
  p.scale = rng.next_uniform(0.01f, 0.2f);
  p.zero_point = rng.next_int(-30, 30);
  return p;
}

inline QConv2D make_random_qconv(const ConvGeom& geom, uint64_t seed,
                                 bool folded_relu = false) {
  Rng rng(seed);
  QConv2D conv;
  conv.geom = geom;
  conv.in = random_act_params(rng);
  conv.out = random_act_params(rng);
  const float w_scale = rng.next_uniform(0.002f, 0.05f);
  conv.weights.resize(static_cast<size_t>(geom.weight_count()));
  for (auto& w : conv.weights)
    w = static_cast<int8_t>(rng.next_int(-127, 127));
  conv.bias.resize(static_cast<size_t>(geom.out_c));
  for (auto& b : conv.bias) b = rng.next_int(-4000, 4000);
  set_pertensor_wscale(conv, w_scale);
  conv.act_min = folded_relu ? conv.out.zero_point : -128;
  conv.act_max = 127;
  return conv;
}

inline QDepthwiseConv2D make_random_qdw(int in_h, int in_w, int channels,
                                        int kernel, int stride, int pad,
                                        uint64_t seed,
                                        bool folded_relu = false) {
  Rng rng(seed);
  QDepthwiseConv2D dw;
  dw.in_h = in_h;
  dw.in_w = in_w;
  dw.channels = channels;
  dw.kernel = kernel;
  dw.stride = stride;
  dw.pad = pad;
  dw.in = random_act_params(rng);
  dw.out = random_act_params(rng);
  const float w_scale = rng.next_uniform(0.002f, 0.05f);
  dw.weights.resize(static_cast<size_t>(dw.weight_count()));
  for (auto& w : dw.weights)
    w = static_cast<int8_t>(rng.next_int(-127, 127));
  dw.bias.resize(static_cast<size_t>(channels));
  for (auto& b : dw.bias) b = rng.next_int(-4000, 4000);
  set_pertensor_wscale(dw, w_scale);
  dw.act_min = folded_relu ? dw.out.zero_point : -128;
  dw.act_max = 127;
  return dw;
}

inline QDense make_random_qdense(int in_dim, int out_dim, uint64_t seed) {
  Rng rng(seed);
  QDense fc;
  fc.in_dim = in_dim;
  fc.out_dim = out_dim;
  fc.in = random_act_params(rng);
  fc.out = random_act_params(rng);
  fc.w_scale = rng.next_uniform(0.002f, 0.05f);
  fc.weights.resize(static_cast<size_t>(in_dim) * out_dim);
  for (auto& w : fc.weights)
    w = static_cast<int8_t>(rng.next_int(-127, 127));
  fc.bias.resize(static_cast<size_t>(out_dim));
  for (auto& b : fc.bias) b = rng.next_int(-4000, 4000);
  fc.requant = quantize_multiplier(
      static_cast<double>(fc.in.scale) * fc.w_scale / fc.out.scale);
  return fc;
}

// Residual requantize-and-add layer over two tensors with params `a` and
// `b`, producing `out` (random output params come from the caller so
// quantization chains stay explicit).
inline QAdd make_qadd(int h, int w, int channels, const QuantParams& a,
                      const QuantParams& b, const QuantParams& out,
                      bool folded_relu = false) {
  QAdd q;
  q.h = h;
  q.w = w;
  q.channels = channels;
  q.in_a = a;
  q.in_b = b;
  q.out = out;
  q.requant_a =
      quantize_multiplier(static_cast<double>(a.scale) / out.scale);
  q.requant_b =
      quantize_multiplier(static_cast<double>(b.scale) / out.scale);
  q.act_min = folded_relu ? q.out.zero_point : -128;
  q.act_max = 127;
  return q;
}

// Spread a layer's per-channel weight scales apart by random factors and
// rebake the requant constants. Turns the uniform (per-tensor style)
// vectors the make_random_* builders produce into genuinely per-channel
// quantization, for fuzzing the per-channel requant paths.
template <typename ConvLike>
inline void spread_wscales(ConvLike& layer, Rng& rng) {
  for (float& s : layer.w_scales) s *= rng.next_uniform(0.25f, 4.0f);
  refresh_requant(layer);
}

// Apply spread_wscales to every conv/depthwise layer of a model.
inline void spread_model_wscales(QModel& m, uint64_t seed) {
  Rng rng(seed);
  for (QLayer& layer : m.layers) {
    if (auto* conv = std::get_if<QConv2D>(&layer)) {
      spread_wscales(*conv, rng);
    } else if (auto* dw = std::get_if<QDepthwiseConv2D>(&layer)) {
      spread_wscales(*dw, rng);
    }
  }
}

inline std::vector<int8_t> make_random_input(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int8_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<int8_t>(rng.next_int(-128, 127));
  return v;
}

inline std::vector<uint8_t> make_random_image(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<uint8_t>(rng.next_int(0, 255));
  return v;
}

// Random skip mask for one conv layer with approximately `density`
// fraction of operands skipped.
inline std::vector<uint8_t> make_random_skip(const ConvGeom& geom,
                                             double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> mask(static_cast<size_t>(geom.weight_count()));
  for (auto& m : mask) m = rng.next_bool(density) ? 1 : 0;
  return mask;
}

// A small but structurally complete model: conv -> pool -> conv(relu) ->
// fc, with chained quantization params. in: 12x12x3 u8 image.
inline QModel make_tiny_qmodel(uint64_t seed) {
  Rng rng(seed);
  QModel m;
  m.name = "tiny-test";
  m.topology = "2-1-1";
  m.in_h = 12;
  m.in_w = 12;
  m.in_c = 3;
  m.input = {1.0f / 255.0f, -128};

  ConvGeom g1;
  g1.in_h = 12; g1.in_w = 12; g1.in_c = 3;
  g1.out_c = 6; g1.kernel = 3; g1.stride = 1; g1.pad = 1;
  QConv2D c1 = make_random_qconv(g1, seed * 31 + 1, /*folded_relu=*/true);
  c1.in = m.input;
  refresh_requant(c1);
  c1.act_min = c1.out.zero_point;

  QMaxPool p1;
  p1.in_h = 12; p1.in_w = 12; p1.channels = 6; p1.kernel = 2; p1.stride = 2;

  ConvGeom g2;
  g2.in_h = 6; g2.in_w = 6; g2.in_c = 6;
  g2.out_c = 8; g2.kernel = 3; g2.stride = 1; g2.pad = 1;
  QConv2D c2 = make_random_qconv(g2, seed * 31 + 2, /*folded_relu=*/true);
  c2.in = c1.out;
  refresh_requant(c2);
  c2.act_min = c2.out.zero_point;

  QDense fc = make_random_qdense(6 * 6 * 8, 10, seed * 31 + 3);
  fc.in = c2.out;
  fc.requant = quantize_multiplier(
      static_cast<double>(fc.in.scale) * fc.w_scale / fc.out.scale);

  m.layers.emplace_back(std::move(c1));
  m.layers.emplace_back(p1);
  m.layers.emplace_back(std::move(c2));
  m.layers.emplace_back(std::move(fc));
  return m;
}

// A small residual (DAG) model: conv -> conv -> add(skip from conv1) ->
// conv -> add(skip from the first add) -> fc, all shape-preserving, with
// chained quantization params and explicit layer_inputs. The two nested
// skip edges make the liveness planner keep three tensors live at the
// adds, so DAG peak RAM < sum-of-tensors but > the chain ping-pong pair.
// in: 8x8x4 u8 image.
inline QModel make_residual_qmodel(uint64_t seed) {
  QModel m;
  m.name = "residual-test";
  m.topology = "1-[r2]-1";
  m.in_h = 8;
  m.in_w = 8;
  m.in_c = 4;
  m.input = {1.0f / 255.0f, -128};

  ConvGeom g;
  g.in_h = 8; g.in_w = 8; g.in_c = 4;
  g.out_c = 4; g.kernel = 3; g.stride = 1; g.pad = 1;

  QConv2D c1 = make_random_qconv(g, seed * 61 + 1, /*folded_relu=*/true);
  c1.in = m.input;
  refresh_requant(c1);
  c1.act_min = c1.out.zero_point;

  QConv2D c2 = make_random_qconv(g, seed * 61 + 2, /*folded_relu=*/true);
  c2.in = c1.out;
  refresh_requant(c2);
  c2.act_min = c2.out.zero_point;

  Rng rng(seed * 61 + 3);
  // add1 reads tensor 2 (c2 out) and tensor 1 (c1 out).
  QAdd a1 = make_qadd(8, 8, 4, c2.out, c1.out, random_act_params(rng));

  QConv2D c3 = make_random_qconv(g, seed * 61 + 4, /*folded_relu=*/true);
  c3.in = a1.out;
  refresh_requant(c3);
  c3.act_min = c3.out.zero_point;

  // add2 reads tensor 4 (c3 out) and tensor 3 (add1 out) — nested with
  // the first skip edge.
  QAdd a2 = make_qadd(8, 8, 4, c3.out, a1.out, random_act_params(rng));

  QDense fc = make_random_qdense(8 * 8 * 4, 10, seed * 61 + 5);
  fc.in = a2.out;
  fc.requant = quantize_multiplier(
      static_cast<double>(fc.in.scale) * fc.w_scale / fc.out.scale);

  m.layers.emplace_back(std::move(c1));   // layer 0 -> tensor 1
  m.layers.emplace_back(std::move(c2));   // layer 1 -> tensor 2
  m.layers.emplace_back(std::move(a1));   // layer 2 -> tensor 3
  m.layers.emplace_back(std::move(c3));   // layer 3 -> tensor 4
  m.layers.emplace_back(std::move(a2));   // layer 4 -> tensor 5
  m.layers.emplace_back(std::move(fc));   // layer 5 -> tensor 6
  m.layer_inputs = {{0}, {1}, {2, 1}, {3}, {4, 3}, {5}};
  m.validate_dag();
  return m;
}

// VWW-shaped fixture: the depthwise backbone + binary head of the vww
// zoo workload at test scale. conv -> dw -> avgpool -> fc(2), with
// chained quantization params. in: 8x8x3 u8 image.
inline QModel make_tiny_vww_qmodel(uint64_t seed) {
  QModel m;
  m.name = "tiny-vww-test";
  m.topology = "1+1ds-1";
  m.in_h = 8;
  m.in_w = 8;
  m.in_c = 3;
  m.input = {1.0f / 255.0f, -128};

  ConvGeom g;
  g.in_h = 8; g.in_w = 8; g.in_c = 3;
  g.out_c = 6; g.kernel = 3; g.stride = 1; g.pad = 1;
  QConv2D c1 = make_random_qconv(g, seed * 71 + 1, /*folded_relu=*/true);
  c1.in = m.input;
  refresh_requant(c1);
  c1.act_min = c1.out.zero_point;

  QDepthwiseConv2D dw = make_random_qdw(8, 8, 6, /*kernel=*/3, /*stride=*/1,
                                        /*pad=*/1, seed * 71 + 2,
                                        /*folded_relu=*/true);
  dw.in = c1.out;
  refresh_requant(dw);
  dw.act_min = dw.out.zero_point;

  QAvgPool pool;
  pool.in_h = 8; pool.in_w = 8; pool.channels = 6;
  pool.kernel = 2; pool.stride = 2;

  QDense fc = make_random_qdense(4 * 4 * 6, 2, seed * 71 + 3);
  fc.in = dw.out;
  fc.requant = quantize_multiplier(
      static_cast<double>(fc.in.scale) * fc.w_scale / fc.out.scale);

  m.layers.emplace_back(std::move(c1));
  m.layers.emplace_back(std::move(dw));
  m.layers.emplace_back(pool);
  m.layers.emplace_back(std::move(fc));
  return m;
}

// Autoencoder-shaped fixture with a scored head: dense-only bottleneck
// whose final layer reconstructs the input (out_dim == in pixels), head
// = kScore with a fixed threshold. Zero approximable layers — the DSE
// degenerate path. in: 4x4x3 u8 image.
inline QModel make_tiny_scored_qmodel(uint64_t seed,
                                      float threshold = 0.02f) {
  QModel m;
  m.name = "tiny-ae-test";
  m.topology = "d16-d48";
  m.in_h = 4;
  m.in_w = 4;
  m.in_c = 3;
  m.input = {1.0f / 255.0f, -128};
  m.head = TaskHead::kScore;
  m.score_threshold = threshold;

  QDense enc = make_random_qdense(48, 16, seed * 91 + 1);
  enc.in = m.input;
  enc.requant = quantize_multiplier(
      static_cast<double>(enc.in.scale) * enc.w_scale / enc.out.scale);
  enc.act_min = enc.out.zero_point;  // folded relu

  QDense dec = make_random_qdense(16, 48, seed * 91 + 2);
  dec.in = enc.out;
  dec.requant = quantize_multiplier(
      static_cast<double>(dec.in.scale) * dec.w_scale / dec.out.scale);

  m.layers.emplace_back(std::move(enc));
  m.layers.emplace_back(std::move(dec));
  return m;
}

}  // namespace ataman::testing
