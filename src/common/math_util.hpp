// Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "src/common/error.hpp"

namespace ataman {

constexpr int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Saturate an int32 accumulator into int8 (CMSIS __SSAT(x, 8)).
constexpr int8_t saturate_int8(int32_t v) {
  return static_cast<int8_t>(std::clamp<int32_t>(v, -128, 127));
}

constexpr int16_t saturate_int16(int32_t v) {
  return static_cast<int16_t>(std::clamp<int32_t>(v, -32768, 32767));
}

// Checked narrowing conversion (Core Guidelines ES.46 narrow_cast with check).
template <typename To, typename From>
To narrow(From value) {
  const To result = static_cast<To>(value);
  check(static_cast<From>(result) == value, "narrowing conversion lost value");
  return result;
}

// Round-to-nearest-even float->int conversion used by the quantizer.
inline int32_t round_to_int32(float v) {
  return static_cast<int32_t>(std::lrintf(v));
}

// Output spatial extent of a conv/pool window.
constexpr int conv_out_extent(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace ataman
