#include <cmath>

#include "src/common/parallel.hpp"
#include "src/train/layers.hpp"

namespace ataman {

DepthwiseConv2DLayer::DepthwiseConv2DLayer(Geom geom, Rng& rng)
    : geom_(geom) {
  check(geom_.kernel >= 1 && geom_.stride >= 1 && geom_.pad >= 0 &&
            geom_.channels >= 1,
        "invalid depthwise geometry");
  check(geom_.out_h() > 0 && geom_.out_w() > 0,
        "depthwise output collapses");
  const size_t wn = static_cast<size_t>(geom_.weight_count());
  weights_.resize(wn);
  dweights_.assign(wn, 0.0f);
  bias_.assign(static_cast<size_t>(geom_.channels), 0.0f);
  dbias_.assign(bias_.size(), 0.0f);
  // He initialization: fan_in = kernel^2 (one channel's taps).
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(geom_.kernel * geom_.kernel));
  for (auto& w : weights_) w = rng.next_normal(0.0f, stddev);
}

FTensor DepthwiseConv2DLayer::forward(const FTensor& x, bool train) {
  check(x.rank() == 4, "depthwise input must be [B,H,W,C]");
  check(x.dim(1) == geom_.in_h && x.dim(2) == geom_.in_w &&
            x.dim(3) == geom_.channels,
        "depthwise input shape mismatch: got " + x.shape_str());
  const int batch = x.dim(0);
  const int oh = geom_.out_h(), ow = geom_.out_w(), c = geom_.channels;

  FTensor y({batch, oh, ow, c});
  if (train) cached_input_ = x;

  parallel_for(0, batch, [&](int64_t b) {
    const float* in = x.item(static_cast<int>(b));
    float* out = y.item(static_cast<int>(b));
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float* orow = out + (static_cast<size_t>(oy) * ow + ox) * c;
        for (int ch = 0; ch < c; ++ch)
          orow[ch] = bias_[static_cast<size_t>(ch)];
        int p = 0;
        for (int ky = 0; ky < geom_.kernel; ++ky) {
          const int iy = oy * geom_.stride - geom_.pad + ky;
          for (int kx = 0; kx < geom_.kernel; ++kx, ++p) {
            const int ix = ox * geom_.stride - geom_.pad + kx;
            if (iy < 0 || iy >= geom_.in_h || ix < 0 || ix >= geom_.in_w)
              continue;  // zero padding
            const float* irow =
                in + (static_cast<size_t>(iy) * geom_.in_w + ix) * c;
            const float* wrow = weights_.data() + static_cast<size_t>(p) * c;
            for (int ch = 0; ch < c; ++ch) orow[ch] += irow[ch] * wrow[ch];
          }
        }
      }
    }
  });
  return y;
}

FTensor DepthwiseConv2DLayer::backward(const FTensor& dy) {
  const FTensor& x = cached_input_;
  check(x.size() > 0, "depthwise backward before forward(train=true)");
  const int batch = x.dim(0);
  const int oh = geom_.out_h(), ow = geom_.out_w(), c = geom_.channels;

  FTensor dx({batch, geom_.in_h, geom_.in_w, c});

  // Per-worker gradient buffers; static image->worker mapping keeps the
  // reduction order (and therefore the result) deterministic.
  const int max_workers = num_threads();
  std::vector<std::vector<float>> dw_local(
      static_cast<size_t>(max_workers),
      std::vector<float>(weights_.size(), 0.0f));
  std::vector<std::vector<float>> db_local(
      static_cast<size_t>(max_workers), std::vector<float>(bias_.size(), 0.0f));

  const int workers = parallel_for_indexed(0, batch, [&](int w, int64_t b) {
    const float* in = x.item(static_cast<int>(b));
    const float* dyb = dy.item(static_cast<int>(b));
    float* dxb = dx.item(static_cast<int>(b));
    auto& dwl = dw_local[static_cast<size_t>(w)];
    auto& dbl = db_local[static_cast<size_t>(w)];
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const float* drow = dyb + (static_cast<size_t>(oy) * ow + ox) * c;
        for (int ch = 0; ch < c; ++ch)
          dbl[static_cast<size_t>(ch)] += drow[ch];
        int p = 0;
        for (int ky = 0; ky < geom_.kernel; ++ky) {
          const int iy = oy * geom_.stride - geom_.pad + ky;
          for (int kx = 0; kx < geom_.kernel; ++kx, ++p) {
            const int ix = ox * geom_.stride - geom_.pad + kx;
            if (iy < 0 || iy >= geom_.in_h || ix < 0 || ix >= geom_.in_w)
              continue;
            const float* irow =
                in + (static_cast<size_t>(iy) * geom_.in_w + ix) * c;
            float* dxrow =
                dxb + (static_cast<size_t>(iy) * geom_.in_w + ix) * c;
            const float* wrow = weights_.data() + static_cast<size_t>(p) * c;
            float* dwrow = dwl.data() + static_cast<size_t>(p) * c;
            for (int ch = 0; ch < c; ++ch) {
              dwrow[ch] += drow[ch] * irow[ch];
              dxrow[ch] += drow[ch] * wrow[ch];
            }
          }
        }
      }
    }
  });

  for (int w = 0; w < workers; ++w) {
    const auto& dwl = dw_local[static_cast<size_t>(w)];
    for (size_t i = 0; i < dweights_.size(); ++i) dweights_[i] += dwl[i];
    const auto& dbl = db_local[static_cast<size_t>(w)];
    for (size_t i = 0; i < dbias_.size(); ++i) dbias_[i] += dbl[i];
  }
  return dx;
}

void DepthwiseConv2DLayer::collect_params(std::vector<ParamRef>& out) {
  out.push_back({&weights_, &dweights_});
  out.push_back({&bias_, &dbias_});
}

}  // namespace ataman
