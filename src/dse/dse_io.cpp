#include "src/dse/dse_io.hpp"

#include <fstream>
#include <sstream>

#include "src/common/error.hpp"

namespace ataman {

namespace {

Json result_to_json(const DseResult& r) {
  JsonObject o;
  o.emplace("config", r.config.to_json());
  o.emplace("accuracy", r.accuracy);
  if (r.partial_eval) o.emplace("partial_eval", true);
  o.emplace("executed_macs", static_cast<int64_t>(r.executed_macs));
  o.emplace("skipped_conv_macs", static_cast<int64_t>(r.skipped_conv_macs));
  o.emplace("conv_mac_reduction", r.conv_mac_reduction);
  o.emplace("cycles", static_cast<int64_t>(r.cycles));
  o.emplace("latency_reduction", r.latency_reduction);
  o.emplace("flash_bytes", static_cast<int64_t>(r.flash_bytes));
  // Omitted when the sweep did not model streaming (version 3).
  if (r.stream_cycles_per_frame > 0) {
    o.emplace("stream_cycles_per_frame",
              static_cast<int64_t>(r.stream_cycles_per_frame));
    o.emplace("stream_energy_mj_per_frame", r.stream_energy_mj_per_frame);
  }
  return Json(std::move(o));
}

DseResult result_from_json(const Json& j) {
  DseResult r;
  r.config = ApproxConfig::from_json(j.at("config"));
  r.accuracy = j.at("accuracy").as_number();
  // Absent in version-1 files (full sweeps only) and omitted for
  // full-budget results: both mean "not partial".
  if (j.contains("partial_eval")) r.partial_eval = j.at("partial_eval").as_bool();
  r.executed_macs = j.at("executed_macs").as_int();
  r.skipped_conv_macs = j.at("skipped_conv_macs").as_int();
  r.conv_mac_reduction = j.at("conv_mac_reduction").as_number();
  r.cycles = j.at("cycles").as_int();
  r.latency_reduction = j.at("latency_reduction").as_number();
  r.flash_bytes = j.at("flash_bytes").as_int();
  // Absent in pre-version-3 files and for non-streaming sweeps: both
  // mean "streaming not modeled" (0).
  if (j.contains("stream_cycles_per_frame")) {
    r.stream_cycles_per_frame = j.at("stream_cycles_per_frame").as_int();
    r.stream_energy_mj_per_frame =
        j.at("stream_energy_mj_per_frame").as_number();
  }
  return r;
}

}  // namespace

// Format history:
//   1 (implicit, no "version" field): results + pareto + exact_accuracy +
//     baseline_cycles + wall_seconds + threads_used.
//   2: adds "version" and the fast-sweep statistics cache_hits /
//     images_evaluated / early_exits. Loading stays backward compatible:
//     missing statistics default to 0.
//   3: adds the optional per-result steady-state streaming row
//     (stream_cycles_per_frame / stream_energy_mj_per_frame). Missing
//     fields load as 0 ("streaming not modeled").
constexpr int64_t kDseFormatVersion = 3;

Json dse_outcome_to_json(const DseOutcome& outcome) {
  JsonObject o;
  o.emplace("version", kDseFormatVersion);
  JsonArray results;
  results.reserve(outcome.results.size());
  for (const DseResult& r : outcome.results)
    results.push_back(result_to_json(r));
  o.emplace("results", std::move(results));
  JsonArray pareto;
  pareto.reserve(outcome.pareto.size());
  for (const int idx : outcome.pareto) pareto.emplace_back(idx);
  o.emplace("pareto", std::move(pareto));
  o.emplace("exact_accuracy", outcome.exact_accuracy);
  o.emplace("baseline_cycles", static_cast<int64_t>(outcome.baseline_cycles));
  o.emplace("wall_seconds", outcome.wall_seconds);
  o.emplace("threads_used", outcome.threads_used);
  o.emplace("cache_hits", static_cast<int64_t>(outcome.cache_hits));
  o.emplace("images_evaluated",
            static_cast<int64_t>(outcome.images_evaluated));
  o.emplace("early_exits", outcome.early_exits);
  return Json(std::move(o));
}

DseOutcome dse_outcome_from_json(const Json& j) {
  const int64_t version = j.contains("version") ? j.at("version").as_int() : 1;
  check(version >= 1 && version <= kDseFormatVersion,
        "unsupported DSE file version " + std::to_string(version));
  DseOutcome outcome;
  for (const Json& r : j.at("results").as_array())
    outcome.results.push_back(result_from_json(r));
  for (const Json& p : j.at("pareto").as_array())
    outcome.pareto.push_back(static_cast<int>(p.as_int()));
  outcome.exact_accuracy = j.at("exact_accuracy").as_number();
  outcome.baseline_cycles = j.at("baseline_cycles").as_int();
  outcome.wall_seconds = j.at("wall_seconds").as_number();
  outcome.threads_used = static_cast<int>(j.at("threads_used").as_int());
  // Version-1 files predate the fast-sweep statistics; default to 0.
  if (j.contains("cache_hits")) outcome.cache_hits = j.at("cache_hits").as_int();
  if (j.contains("images_evaluated"))
    outcome.images_evaluated = j.at("images_evaluated").as_int();
  if (j.contains("early_exits"))
    outcome.early_exits = static_cast<int>(j.at("early_exits").as_int());
  for (const int idx : outcome.pareto) {
    check(idx >= 0 && idx < static_cast<int>(outcome.results.size()),
          "pareto index out of range in DSE file");
  }
  return outcome;
}

void save_dse_outcome(const DseOutcome& outcome, const std::string& path) {
  std::ofstream out(path);
  check(out.good(), "cannot open for writing: " + path);
  out << dse_outcome_to_json(outcome).dump_pretty() << '\n';
  check(out.good(), "write failed: " + path);
}

DseOutcome load_dse_outcome(const std::string& path) {
  std::ifstream in(path);
  check(in.good(), "cannot open for reading: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return dse_outcome_from_json(Json::parse(buffer.str()));
}

}  // namespace ataman
