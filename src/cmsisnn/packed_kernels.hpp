// Packed (CMSIS-NN-style) kernels: the exact baseline of the paper [2].
//
// Convolution = q15 im2col + dual-MAC matrix multiply over offline-packed
// weight pairs (SMLAD), exactly the structure of arm_convolve_HWC_q7 /
// arm_nn_mat_mult_kernel_q7_q15. Numerics are bit-exact with the golden
// reference kernels (tests assert this across shapes); only the priced
// instruction stream differs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/quant/qtypes.hpp"

namespace ataman {

// Offline-packed weights for one conv/fc layer: per output channel,
// ceil(patch/2) SMLAD constants (pairs) plus an odd leftover flag.
struct PackedWeights {
  int patch = 0;        // operands per output channel
  int out_c = 0;
  int pairs_per_chan = 0;
  bool has_single = false;
  // [out_c][pairs_per_chan] SMLAD constants; lo lane = even operand.
  std::vector<uint32_t> pair_constants;
  // [out_c] leftover last operand (when patch is odd), as int16 lane.
  std::vector<int16_t> single_weights;

  static PackedWeights pack(std::span<const int8_t> weights, int out_c,
                            int patch);
};

void packed_conv2d(const QConv2D& layer, const PackedWeights& packed,
                   std::span<const int8_t> in, std::span<int8_t> out);

// Depthwise loop kernel in the arm_depthwise_conv_s8 shape: one shared
// zero-point-corrected q15 patch expansion per output position (taps x
// channels, channel innermost — the [k][k][c] weight order), then a
// scalar per-channel tap loop. Per-channel filters cannot feed the
// dual-MAC path (two weights of one SMLAD would hit two different
// accumulators), which is why no PackedWeights stream exists for it —
// exactly CMSIS-NN's structure, and priced accordingly
// (CortexM33CostTable::packed_depthwise_per_mac). Bit-exact with
// depthwise_conv2d_ref.
void packed_depthwise_conv2d(const QDepthwiseConv2D& layer,
                             std::span<const int8_t> in,
                             std::span<int8_t> out);

void packed_dense(const QDense& layer, const PackedWeights& packed,
                  std::span<const int8_t> in, std::span<int8_t> out);

// ---- Batched variants -------------------------------------------------
//
// `in`/`out` are contiguous batches: image b lives at in + b * in_elems
// and out + b * out_elems. Numerics are bitwise identical to running the
// per-image kernel on each image (int32 accumulation is exact, so only
// the operand walk order changes): the batch is folded into the GEMM N
// dimension in lane-blocks of kBatchLanes images, each weight pair
// constant is loaded once and multiplied into kBatchLanes independent
// accumulators (the SMLAD dual-MAC idiom widened to SSE/NEON register
// width), and the requantize epilogue runs per lane-block. Ragged tails
// are handled by computing all kBatchLanes lanes over a zero-padded
// column block and storing only the live ones, so every inner loop has a
// constant trip count.

// Images per accumulator block: four int32 accumulators span one 128-bit
// SSE/NEON register, so the fixed-trip-count lane loops auto-vectorize.
inline constexpr int kBatchLanes = 4;

void packed_conv2d_batch(const QConv2D& layer, const PackedWeights& packed,
                         std::span<const int8_t> in, std::span<int8_t> out,
                         int batch);

void packed_depthwise_conv2d_batch(const QDepthwiseConv2D& layer,
                                   std::span<const int8_t> in,
                                   std::span<int8_t> out, int batch);

void packed_dense_batch(const QDense& layer, const PackedWeights& packed,
                        std::span<const int8_t> in, std::span<int8_t> out,
                        int batch);

}  // namespace ataman
