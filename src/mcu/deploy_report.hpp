// Deployment report: the per-design row of the paper's tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/mcu/board.hpp"

namespace ataman {

struct LayerProfile {
  std::string kind;      // "conv", "pool", "fc", "softmax", "dispatch"
  int64_t cycles = 0;
  int64_t macs = 0;
};

struct DeployReport {
  std::string design;          // e.g. "cmsis-nn", "ataman(0%)", "x-cube-ai"
  std::string network;
  // Paper topology notation, generalized to compact block form: plain
  // chain segments keep the "3-2-2" counts, residual blocks appear as
  // bracketed groups (e.g. "1-[r1]-1-[r1]-1-1" for the mobilenetv2 zoo
  // entry, [rN] = N inverted-residual blocks with a QAdd skip edge).
  std::string topology;
  double top1_accuracy = 0.0;  // fraction in [0,1]
  int64_t cycles = 0;
  double latency_ms = 0.0;
  int64_t mac_ops = 0;         // executed (non-skipped) conv+fc MACs
  int64_t flash_bytes = 0;
  double flash_percent = 0.0;  // of board flash capacity
  int64_t ram_bytes = 0;
  double energy_mj = 0.0;
  bool fits_flash = true;
  bool fits_ram = true;
  // Steady-state streaming row (stream_stride_cols == 0: not modeled):
  // per-frame cost of serving overlapping windows that advance
  // stream_stride_cols input columns per frame with temporal activation
  // reuse (src/mcu/stream_plan.hpp); filled by attach_streaming_row.
  int stream_stride_cols = 0;
  int64_t steady_state_cycles_per_frame = 0;
  double steady_state_latency_ms_per_frame = 0.0;
  double steady_state_energy_mj_per_frame = 0.0;
  double stream_reuse_ratio = 0.0;  // full-frame MACs / recomputed MACs
  std::vector<LayerProfile> per_layer;

  void finalize(const BoardSpec& board) {
    latency_ms = board.cycles_to_ms(cycles);
    energy_mj = board.energy_mj(cycles);
    if (stream_stride_cols > 0) {
      steady_state_latency_ms_per_frame =
          board.cycles_to_ms(steady_state_cycles_per_frame);
      steady_state_energy_mj_per_frame =
          board.energy_mj(steady_state_cycles_per_frame);
    }
    flash_percent = 100.0 * static_cast<double>(flash_bytes) /
                    static_cast<double>(board.flash_bytes);
    fits_flash = flash_bytes <= board.flash_bytes;
    fits_ram = ram_bytes <= board.ram_bytes;
  }
};

}  // namespace ataman
