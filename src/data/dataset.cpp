#include "src/data/dataset.hpp"

#include <cmath>
#include <numeric>

#include "src/common/error.hpp"

namespace ataman {

Dataset::Dataset(ImageShape shape, int num_classes)
    : shape_(shape), num_classes_(num_classes) {
  check(num_classes > 0, "dataset needs at least one class");
  check(shape.pixels() > 0, "dataset image shape must be non-empty");
}

void Dataset::add(std::span<const uint8_t> pixels, int label) {
  check(static_cast<int>(pixels.size()) == shape_.pixels(),
        "image size does not match dataset shape");
  check(label >= 0 && label < num_classes_, "label out of range");
  pixels_.insert(pixels_.end(), pixels.begin(), pixels.end());
  labels_.push_back(static_cast<uint8_t>(label));
}

std::span<const uint8_t> Dataset::image(int index) const {
  check(index >= 0 && index < size(), "image index out of range");
  const size_t stride = static_cast<size_t>(shape_.pixels());
  return {pixels_.data() + stride * static_cast<size_t>(index), stride};
}

int Dataset::label(int index) const {
  check(index >= 0 && index < size(), "label index out of range");
  return labels_[static_cast<size_t>(index)];
}

void Dataset::shuffle(Rng& rng) {
  std::vector<int> order(static_cast<size_t>(size()));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<uint8_t> new_pixels(pixels_.size());
  std::vector<uint8_t> new_labels(labels_.size());
  const size_t stride = static_cast<size_t>(shape_.pixels());
  for (size_t i = 0; i < order.size(); ++i) {
    const auto src = image(order[i]);
    std::copy(src.begin(), src.end(), new_pixels.begin() + stride * i);
    new_labels[i] = labels_[static_cast<size_t>(order[i])];
  }
  pixels_ = std::move(new_pixels);
  labels_ = std::move(new_labels);
}

Dataset Dataset::head(int n) const {
  check(n >= 0 && n <= size(), "subset size out of range");
  Dataset out(shape_, num_classes_);
  for (int i = 0; i < n; ++i) out.add(image(i), label(i));
  return out;
}

std::vector<int> Dataset::class_histogram() const {
  std::vector<int> hist(static_cast<size_t>(num_classes_), 0);
  for (const uint8_t l : labels_) ++hist[l];
  return hist;
}

double Dataset::pixel_mean() const {
  if (pixels_.empty()) return 0.0;
  double sum = 0.0;
  for (const uint8_t p : pixels_) sum += p;
  return sum / static_cast<double>(pixels_.size());
}

double Dataset::pixel_stddev() const {
  if (pixels_.empty()) return 0.0;
  const double mean = pixel_mean();
  double acc = 0.0;
  for (const uint8_t p : pixels_) {
    const double d = p - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(pixels_.size()));
}

}  // namespace ataman
