// Post-training quantizer: float Network -> int8 QModel.
//
// Mirrors the paper's deployment flow ("8-bit post-training quantization",
// §II-A) with the TFLite-Micro weight refinement: conv/depthwise weights
// symmetric per-output-channel (dense stays per-tensor), activations
// asymmetric per-tensor calibrated on a small dataset subset, ReLU folded
// into the conv/fc output clamp, biases int32 at in_scale * w_scales[c].
#pragma once

#include "src/data/dataset.hpp"
#include "src/quant/qtypes.hpp"
#include "src/train/network.hpp"

namespace ataman {

struct QuantizerConfig {
  int calibration_images = 256;
  // Tail mass clipped per side when deriving activation ranges.
  double clip_quantile = 0.002;
  // Per-output-channel weight scales for conv/depthwise (TFLite-Micro
  // int8 convention). false restores the paper's per-tensor setup: one
  // shared max-abs scale broadcast across channels — the ablation mode
  // (bench/ablation_per_channel) and the scheme of pre-PR-9 artifacts.
  bool per_channel_weights = true;
};

// Calibrates on the first `calibration_images` of `calib` and quantizes.
QModel quantize_model(Network& net, const Dataset& calib,
                      const QuantizerConfig& config = {});

// QModel artifact cache (same directory scheme as the float model zoo).
void save_qmodel(const QModel& model, const std::string& path);
QModel load_qmodel(const std::string& path);

}  // namespace ataman
