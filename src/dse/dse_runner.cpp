#include "src/dse/dse_runner.hpp"

#include <atomic>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/common/stopwatch.hpp"
#include "src/core/eval.hpp"
#include "src/dse/adaptive_eval.hpp"
#include "src/dse/prefix_cache.hpp"

namespace ataman {

DseOutcome run_dse(const ConfigEvaluator& evaluator,
                   const std::vector<ApproxConfig>& configs,
                   const DseOptions& options, const DseProgress& progress) {
  check(!configs.empty(), "no configurations to evaluate");
  check(!configs.front().approximates_anything(),
        "configs[0] must be the exact baseline");

  Stopwatch watch;
  DseOutcome outcome;
  outcome.results.resize(configs.size());
  outcome.threads_used = num_threads();

  // The prefix cache replays reference-kernel segments, so it is only an
  // exact substitute when accuracy is measured through the reference
  // oracle (the default). Other backends — and the degenerate space of a
  // model with no approximable layers — keep the per-config sweep.
  if (evaluator.accuracy_engine() == "ref" &&
      evaluator.model().approx_layer_count() > 0) {
    parallel_for(0, static_cast<int64_t>(configs.size()), [&](int64_t i) {
      outcome.results[static_cast<size_t>(i)] =
          evaluator.evaluate_static(configs[static_cast<size_t>(i)]);
    });
    const PrefixCache cache(&evaluator.model(), &evaluator.significance(),
                            &evaluator.eval_set(), configs,
                            evaluator.eval_images());
    AdaptiveSweepOptions sweep_options;
    sweep_options.exact_sweep = options.exact_sweep;
    sweep_options.block_images = options.eval_block;
    sweep_options.z = options.exit_z;
    sweep_options.margin = options.exit_margin;
    SweepStatics statics;
    statics.mac_reduction.resize(configs.size());
    statics.cycles.resize(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
      statics.mac_reduction[i] = outcome.results[i].conv_mac_reduction;
      statics.cycles[i] = outcome.results[i].cycles;
    }
    const AdaptiveSweepResult sweep =
        adaptive_accuracy_sweep(cache, statics, sweep_options, progress);
    for (size_t i = 0; i < configs.size(); ++i) {
      outcome.results[i].accuracy = sweep.accuracy[i];
      outcome.results[i].partial_eval =
          sweep.images_evaluated[i] < cache.eval_images();
    }
    outcome.cache_hits = sweep.cache_hits;
    outcome.images_evaluated = sweep.total_images;
    outcome.early_exits = sweep.early_exits;
  } else {
    std::atomic<int> done{0};
    parallel_for(0, static_cast<int64_t>(configs.size()), [&](int64_t i) {
      outcome.results[static_cast<size_t>(i)] =
          evaluator.evaluate(configs[static_cast<size_t>(i)]);
      const int d = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress && (d % 16 == 0 || d == static_cast<int>(configs.size())))
        progress(d, static_cast<int>(configs.size()));
    });
    outcome.images_evaluated =
        static_cast<int64_t>(configs.size()) *
        clamp_eval_limit(evaluator.eval_images(), evaluator.eval_set().size());
  }

  outcome.exact_accuracy = outcome.results.front().accuracy;
  outcome.baseline_cycles = evaluator.baseline_cycles();

  std::vector<ParetoPoint> points;
  points.reserve(outcome.results.size());
  for (size_t i = 0; i < outcome.results.size(); ++i) {
    points.push_back({outcome.results[i].conv_mac_reduction,
                      outcome.results[i].accuracy, static_cast<int>(i)});
  }
  outcome.pareto = pareto_front(points);
  outcome.wall_seconds = watch.seconds();
  return outcome;
}

DseOutcome run_dse(const ConfigEvaluator& evaluator,
                   const std::vector<ApproxConfig>& configs,
                   const DseProgress& progress) {
  return run_dse(evaluator, configs, DseOptions{}, progress);
}

DseOutcome run_dse(const ConfigEvaluator& evaluator, int conv_count,
                   const DseOptions& options, const DseProgress& progress) {
  return run_dse(evaluator, generate_configs(conv_count, options), options,
                 progress);
}

int select_design(const DseOutcome& outcome, double max_accuracy_loss,
                  int64_t flash_capacity, double max_stream_energy_mj) {
  const double floor_acc = outcome.exact_accuracy - max_accuracy_loss;
  int best = -1;
  for (size_t i = 0; i < outcome.results.size(); ++i) {
    const DseResult& r = outcome.results[i];
    // Partial-sample accuracies (early-exited configs) must not clear an
    // accuracy floor their full-budget measurement might miss.
    if (r.partial_eval) continue;
    if (r.accuracy + 1e-12 < floor_acc) continue;
    if (flash_capacity > 0 && r.flash_bytes > flash_capacity) continue;
    // An active streaming-energy budget needs a modeled row to check
    // against; results swept without set_stream_stride never qualify.
    if (max_stream_energy_mj > 0.0 &&
        (r.stream_energy_mj_per_frame <= 0.0 ||
         r.stream_energy_mj_per_frame > max_stream_energy_mj)) {
      continue;
    }
    if (best < 0 ||
        r.cycles < outcome.results[static_cast<size_t>(best)].cycles) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace ataman
