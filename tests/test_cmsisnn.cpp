// CMSIS-NN-like substrate: SMLAD instruction semantics (including the
// paper's own packing example), packed kernels bit-exact vs. reference,
// full-engine equivalence.
#include <gtest/gtest.h>

#include "src/cmsisnn/cmsis_engine.hpp"
#include "src/data/synth_cifar.hpp"
#include "src/cmsisnn/smlad.hpp"
#include "src/nn/engine.hpp"
#include "src/nn/qkernels_ref.hpp"
#include "tests/test_util.hpp"

namespace ataman {
namespace {

using testing::make_random_input;
using testing::make_random_qconv;
using testing::make_random_qdense;
using testing::make_tiny_qmodel;

TEST(Smlad, PaperPackingExample) {
  // §II-B item 3: w1=64, w2=20 packs to 64*2^16 + 20 = 4194324.
  EXPECT_EQ(pack_weight_pair(64, 20), 4194324u);
  EXPECT_EQ(lane_hi(4194324u), 64);
  EXPECT_EQ(lane_lo(4194324u), 20);
}

TEST(Smlad, NegativeWeightsSignExtend) {
  const uint32_t packed = pack_weight_pair(-3, -128);
  EXPECT_EQ(lane_hi(packed), -3);
  EXPECT_EQ(lane_lo(packed), -128);
}

TEST(Smlad, DualMacMatchesTwoMultiplies) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const auto w1 = static_cast<int8_t>(rng.next_int(-128, 127));
    const auto w2 = static_cast<int8_t>(rng.next_int(-128, 127));
    const auto a1 = static_cast<int16_t>(rng.next_int(-300, 300));
    const auto a2 = static_cast<int16_t>(rng.next_int(-300, 300));
    const int32_t acc = rng.next_int(-100000, 100000);
    const int32_t got =
        smlad(pack_weight_pair(w2, w1), pack_q15_pair(a2, a1), acc);
    const int32_t want = acc + static_cast<int32_t>(w1) * a1 +
                         static_cast<int32_t>(w2) * a2;
    ASSERT_EQ(got, want);
  }
}

TEST(Smlad, SmlabbUsesBottomLanesOnly) {
  const uint32_t x = pack_q15_pair(999, 7);
  const uint32_t y = pack_q15_pair(-888, -3);
  EXPECT_EQ(smlabb(x, y, 10), 10 + 7 * -3);
}

TEST(Smlad, Sxtb16ExtractsBytes0And2) {
  // word = [b3 b2 b1 b0]; SXTB16 -> lanes (b2, b0) sign-extended.
  const uint32_t word = 0x80FF7F01u;  // b3=0x80 b2=0xFF b1=0x7F b0=0x01
  const uint32_t lanes = sxtb16(word);
  EXPECT_EQ(lane_lo(lanes), 1);
  EXPECT_EQ(lane_hi(lanes), -1);
}

TEST(PackedWeights, PairAndSingleLayout) {
  // patch=5 (odd): 2 pairs + single per channel.
  const std::vector<int8_t> w = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const PackedWeights p = PackedWeights::pack(w, /*out_c=*/2, /*patch=*/5);
  EXPECT_EQ(p.pairs_per_chan, 2);
  EXPECT_TRUE(p.has_single);
  EXPECT_EQ(p.pair_constants.size(), 4u);
  EXPECT_EQ(lane_lo(p.pair_constants[0]), 1);
  EXPECT_EQ(lane_hi(p.pair_constants[0]), 2);
  EXPECT_EQ(p.single_weights[0], 5);
  EXPECT_EQ(p.single_weights[1], 10);
}

struct ConvCase {
  int in_h, in_w, in_c, out_c, kernel, stride, pad;
};

class PackedConvShapes : public ::testing::TestWithParam<ConvCase> {};

TEST_P(PackedConvShapes, BitExactVsReference) {
  const ConvCase& c = GetParam();
  ConvGeom g;
  g.in_h = c.in_h; g.in_w = c.in_w; g.in_c = c.in_c;
  g.out_c = c.out_c; g.kernel = c.kernel; g.stride = c.stride; g.pad = c.pad;
  const QConv2D conv = make_random_qconv(g, 31 * c.kernel + c.out_c);
  const PackedWeights packed =
      PackedWeights::pack(conv.weights, g.out_c, g.patch_size());
  const auto in = make_random_input(
      static_cast<int64_t>(g.in_h) * g.in_w * g.in_c, 90);

  std::vector<int8_t> want(static_cast<size_t>(g.positions()) * g.out_c);
  std::vector<int8_t> got(want.size());
  conv2d_ref(conv, in, want);
  packed_conv2d(conv, packed, in, got);
  EXPECT_EQ(want, got);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedConvShapes,
    ::testing::Values(ConvCase{8, 8, 3, 4, 3, 1, 1},   // odd patch (27)
                      ConvCase{8, 8, 4, 6, 3, 1, 1},   // even patch (36)
                      ConvCase{10, 10, 2, 3, 5, 1, 2}, // k=5, even patch
                      ConvCase{10, 10, 3, 2, 5, 1, 2}, // k=5, odd patch (75)
                      ConvCase{9, 7, 5, 4, 3, 2, 0},   // stride 2, no pad
                      ConvCase{6, 6, 1, 8, 1, 1, 0},   // 1x1 conv
                      ConvCase{12, 12, 8, 3, 5, 2, 2}));

TEST(PackedDense, BitExactVsReference) {
  for (const int in_dim : {4, 5, 64, 129}) {
    const QDense fc = make_random_qdense(in_dim, 7, 300 + in_dim);
    const PackedWeights packed =
        PackedWeights::pack(fc.weights, fc.out_dim, fc.in_dim);
    const auto in = make_random_input(in_dim, 301 + in_dim);
    std::vector<int8_t> want(7), got(7);
    dense_ref(fc, in, want);
    packed_dense(fc, packed, in, got);
    EXPECT_EQ(want, got) << "in_dim=" << in_dim;
  }
}

TEST(CmsisEngine, BitExactVsReferenceEngine) {
  const QModel m = make_tiny_qmodel(9);
  RefEngine ref(&m);
  CmsisEngine cmsis(&m);
  for (int i = 0; i < 30; ++i) {
    const auto img = testing::make_random_image(12 * 12 * 3, 500 + i);
    ASSERT_EQ(ref.run(img), cmsis.run(img)) << "image " << i;
  }
}

TEST(CmsisEngine, CycleProfileCoversAllLayers) {
  const QModel m = make_tiny_qmodel(10);
  CmsisEngine engine(&m);
  EXPECT_GT(engine.total_cycles(), 0);
  int convs = 0, pools = 0, fcs = 0;
  int64_t sum = 0;
  for (const LayerProfile& p : engine.layer_profile()) {
    sum += p.cycles;
    if (p.kind == "conv") ++convs;
    if (p.kind == "pool") ++pools;
    if (p.kind == "fc") ++fcs;
  }
  EXPECT_EQ(convs, 2);
  EXPECT_EQ(pools, 1);
  EXPECT_EQ(fcs, 1);
  EXPECT_EQ(sum, engine.total_cycles());
}

TEST(CmsisEngine, DeployReportIsConsistent) {
  const QModel m = make_tiny_qmodel(11);
  CmsisEngine engine(&m);
  SynthCifarSpec spec;
  spec.train_images = 0;
  spec.test_images = 40;
  // 12x12x3 model: build a matching dataset manually.
  Dataset eval(ImageShape{12, 12, 3}, 10);
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    std::vector<uint8_t> img(12 * 12 * 3);
    for (auto& p : img) p = static_cast<uint8_t>(rng.next_int(0, 255));
    eval.add(img, rng.next_int(0, 9));
  }
  const BoardSpec board;
  const DeployReport r = engine.deploy(eval, board);
  EXPECT_EQ(r.design, "cmsis-nn");
  EXPECT_GT(r.latency_ms, 0.0);
  EXPECT_NEAR(r.energy_mj, r.latency_ms * 0.033, 1e-9);
  EXPECT_GT(r.flash_bytes, m.weight_bytes());
  EXPECT_TRUE(r.fits_flash);
  EXPECT_TRUE(r.fits_ram);
  EXPECT_GE(r.top1_accuracy, 0.0);
  EXPECT_LE(r.top1_accuracy, 1.0);
}

}  // namespace
}  // namespace ataman
