#include "src/train/ftensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace ataman {

FTensor::FTensor(std::vector<int> shape) : shape_(std::move(shape)) {
  check(!shape_.empty(), "tensor rank must be >= 1");
  int64_t total = 1;
  for (const int d : shape_) {
    check(d > 0, "tensor dimensions must be positive");
    total *= d;
  }
  data_.assign(static_cast<size_t>(total), 0.0f);
}

int FTensor::dim(int i) const {
  check(i >= 0 && i < rank(), "tensor dim index out of range");
  return shape_[static_cast<size_t>(i)];
}

int64_t FTensor::item_size() const {
  check(rank() >= 1, "tensor has no dimensions");
  return size() / dim(0);
}

float* FTensor::item(int n) {
  check(n >= 0 && n < dim(0), "batch index out of range");
  return data() + item_size() * n;
}

const float* FTensor::item(int n) const {
  check(n >= 0 && n < dim(0), "batch index out of range");
  return data() + item_size() * n;
}

void FTensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

std::string FTensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace ataman
