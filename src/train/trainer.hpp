// Mini-batch SGD training loop.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/train/network.hpp"
#include "src/train/optimizer.hpp"

namespace ataman {

// Training objective. kSoftmaxXent is the classification default;
// kMseReconstruction trains an autoencoder against its own (normalized)
// input — labels are ignored during training, and the reported
// test_accuracy becomes the reconstruction-error rank AUC over the test
// split's 0/1 anomaly labels instead of Top-1.
enum class TrainLoss { kSoftmaxXent = 0, kMseReconstruction = 1 };

struct TrainConfig {
  int epochs = 12;
  int batch_size = 64;
  SgdConfig sgd;
  // Multiply the learning rate by `lr_decay` at each epoch in `lr_decay_at`.
  std::vector<int> lr_decay_at = {8, 11};
  float lr_decay = 0.2f;
  uint64_t seed = 7;
  bool verbose = true;
  TrainLoss loss = TrainLoss::kSoftmaxXent;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double seconds = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double final_train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

// Trains `net` in place on `train`; reports Top-1 on `test` at the end.
TrainResult train_network(Network& net, const Dataset& train,
                          const Dataset& test, const TrainConfig& config);

}  // namespace ataman
