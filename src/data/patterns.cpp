#include "src/data/patterns.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/common/error.hpp"

namespace ataman {

namespace {
constexpr float kTau = 2.0f * std::numbers::pi_v<float>;

// Smooth square wave: sin wave pushed toward +-1 by `sharp`, mapped to [0,1].
float wave(float t, float sharp) {
  const float s = std::sin(t);
  const float pushed = std::tanh(sharp * 2.5f * s);
  return 0.5f + 0.5f * pushed;
}

struct Rotated {
  float ru, rv;
};

Rotated rotate(float u, float v, const PatternParams& p) {
  const float du = u - p.cx;
  const float dv = v - p.cy;
  const float c = std::cos(p.angle);
  const float s = std::sin(p.angle);
  return {du * c - dv * s, du * s + dv * c};
}
}  // namespace

PatternParams sample_pattern_params(Rng& rng) {
  PatternParams p;
  p.freq = rng.next_uniform(2.5f, 6.0f);
  p.phase = rng.next_uniform(0.0f, kTau);
  p.angle = rng.next_uniform(-0.35f, 0.35f);
  p.cx = rng.next_uniform(0.35f, 0.65f);
  p.cy = rng.next_uniform(0.35f, 0.65f);
  p.aspect = rng.next_uniform(0.8f, 1.25f);
  p.sharp = rng.next_uniform(0.8f, 2.0f);
  return p;
}

float pattern_value(PatternFamily family, float u, float v,
                    const PatternParams& p) {
  switch (family) {
    case PatternFamily::kHorizontalStripes:
      return wave(kTau * p.freq * v + p.phase + p.angle * u * 4.0f, p.sharp);
    case PatternFamily::kVerticalStripes:
      return wave(kTau * p.freq * u + p.phase + p.angle * v * 4.0f, p.sharp);
    case PatternFamily::kDiagonalStripes:
      return wave(kTau * p.freq * 0.7071f * (u + v) + p.phase, p.sharp);
    case PatternFamily::kCheckerboard: {
      const float a = wave(kTau * p.freq * u + p.phase, p.sharp);
      const float b = wave(kTau * p.freq * v + p.phase, p.sharp);
      // XOR-like mix of the two square waves.
      return a + b - 2.0f * a * b;
    }
    case PatternFamily::kRings: {
      const auto [ru, rv] = rotate(u, v, p);
      const float r = std::sqrt(ru * ru + (rv * rv) * p.aspect);
      return wave(kTau * p.freq * 1.4f * r + p.phase, p.sharp);
    }
    case PatternFamily::kGaussianBlob: {
      const auto [ru, rv] = rotate(u, v, p);
      const float r2 = ru * ru * p.aspect + rv * rv / p.aspect;
      const float sigma = 0.16f + 0.10f / p.freq;
      return std::exp(-r2 / (2.0f * sigma * sigma));
    }
    case PatternFamily::kCross: {
      const auto [ru, rv] = rotate(u, v, p);
      const float bar = 0.06f + 0.05f / p.freq;
      const float on_h = std::exp(-(rv * rv) / (2.0f * bar * bar));
      const float on_v = std::exp(-(ru * ru) / (2.0f * bar * bar));
      return std::min(1.0f, on_h + on_v);
    }
    case PatternFamily::kQuadrants: {
      const auto [ru, rv] = rotate(u, v, p);
      const float a = ru >= 0 ? 1.0f : 0.0f;
      const float b = rv >= 0 ? 1.0f : 0.0f;
      return 0.15f + 0.7f * (a + b - 2.0f * a * b);
    }
    case PatternFamily::kDots: {
      // Grid of soft dots.
      const auto [ru, rv] = rotate(u, v, p);
      const float gu = ru * p.freq - std::floor(ru * p.freq) - 0.5f;
      const float gv = rv * p.freq - std::floor(rv * p.freq) - 0.5f;
      const float r2 = gu * gu + gv * gv;
      return std::exp(-r2 / 0.045f);
    }
    case PatternFamily::kRadialSectors: {
      const auto [ru, rv] = rotate(u, v, p);
      const float theta = std::atan2(rv, ru);
      return wave(std::round(p.freq) * theta + p.phase, p.sharp);
    }
  }
  fail("unknown pattern family");
}

}  // namespace ataman
