#include "src/common/serialize.hpp"

#include <filesystem>

namespace ataman {

namespace {
constexpr uint32_t kFormatVersion = 3;
}

BinaryWriter::BinaryWriter(const std::string& path, const std::string& magic)
    : out_(path, std::ios::binary), path_(path) {
  check(out_.good(), "cannot open file for writing: " + path);
  str(magic);
  u32(kFormatVersion);
}

BinaryWriter::~BinaryWriter() = default;

void BinaryWriter::u32(uint32_t v) { bytes(&v, sizeof v); }
void BinaryWriter::i32(int32_t v) { bytes(&v, sizeof v); }
void BinaryWriter::u64(uint64_t v) { bytes(&v, sizeof v); }
void BinaryWriter::f32(float v) { bytes(&v, sizeof v); }
void BinaryWriter::f64(double v) { bytes(&v, sizeof v); }

void BinaryWriter::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void BinaryWriter::bytes(const void* data, size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  check(out_.good(), "write failed: " + path_);
}

void BinaryWriter::close() {
  out_.close();
  check(!out_.fail(), "close failed: " + path_);
}

BinaryReader::BinaryReader(const std::string& path, const std::string& magic)
    : in_(path, std::ios::binary), path_(path) {
  check(in_.good(), "cannot open file for reading: " + path);
  const std::string got = str();
  check(got == magic, "bad magic in " + path + " (expected " + magic +
                          ", got " + got + ")");
  const uint32_t version = u32();
  check(version == kFormatVersion,
        "unsupported artifact version in " + path);
}

uint32_t BinaryReader::u32() {
  uint32_t v = 0;
  bytes(&v, sizeof v);
  return v;
}

int32_t BinaryReader::i32() {
  int32_t v = 0;
  bytes(&v, sizeof v);
  return v;
}

uint64_t BinaryReader::u64() {
  uint64_t v = 0;
  bytes(&v, sizeof v);
  return v;
}

float BinaryReader::f32() {
  float v = 0;
  bytes(&v, sizeof v);
  return v;
}

double BinaryReader::f64() {
  double v = 0;
  bytes(&v, sizeof v);
  return v;
}

std::string BinaryReader::str() {
  const uint64_t n = u64();
  check(n < (1ULL << 24), "implausible string size in " + path_);
  std::string s(static_cast<size_t>(n), '\0');
  bytes(s.data(), s.size());
  return s;
}

void BinaryReader::bytes(void* data, size_t n) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  check(in_.gcount() == static_cast<std::streamsize>(n),
        "unexpected end of file: " + path_);
}

bool BinaryReader::at_end() {
  return in_.peek() == std::ifstream::traits_type::eof();
}

bool file_exists(const std::string& path) {
  return std::filesystem::exists(path);
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  check(!ec, "cannot create directory: " + path);
}

}  // namespace ataman
